//! BSP engine scaling: wall time per thread count × solver ×
//! representation over the bundled workload suite, written to
//! `BENCH_par.json` in the stable `name/config/median/best` schema
//! (see `ant_bench::schema`; the thread count is part of `config`,
//! e.g. `"lcd+hcd/bitmap/t4"`).
//!
//! Runs are *interleaved* best-of-N (default 5, `ANT_BENCH_REPEATS`): the
//! outer loop is the repetition, the inner loops visit every
//! (benchmark, algorithm, repr, threads) cell once per repetition, so slow
//! drift (thermal, allocator state) hits all cells equally. Every cell's
//! counters are asserted identical to the 1-thread run of the same cell —
//! the BSP engine may only change wall time.
//!
//! ```text
//! cargo run --release -p ant-bench --bin par_bench
//! ```

use ant_bench::runner::{prepare_suite, repeats_from_env, PreparedBench};
use ant_bench::schema::{render_bench_json, BenchRecord};
use ant_core::{solve_dyn, Algorithm, PtsKind, SolverConfig, SolverStats};

const ALGORITHMS: [Algorithm; 3] = [Algorithm::Lcd, Algorithm::LcdHcd, Algorithm::Pkh];
const REPRS: [PtsKind; 2] = [PtsKind::Bitmap, PtsKind::Shared];
const THREADS: [usize; 4] = [1, 2, 4, 8];

/// The §5.3 counters that must be thread-count-invariant.
fn counters(s: &SolverStats) -> [u64; 6] {
    [
        s.nodes_processed,
        s.propagations,
        s.edges_added,
        s.cycle_searches,
        s.cycles_found,
        s.nodes_collapsed,
    ]
}

fn run_once(
    bench: &PreparedBench,
    alg: Algorithm,
    pts: PtsKind,
    threads: usize,
    record: &mut BenchRecord,
) -> [u64; 6] {
    let config = SolverConfig::new(alg).with_threads(threads);
    let out = solve_dyn(&bench.program, &config, pts);
    record.samples.push(out.stats.solve_time.as_secs_f64());
    counters(&out.stats)
}

fn main() {
    let benches = prepare_suite();
    let repeats = {
        let r = repeats_from_env();
        if std::env::var("ANT_BENCH_REPEATS").is_err() && std::env::var("ANT_REPEATS").is_err() {
            5
        } else {
            r
        }
    };

    // records[bench × alg × repr × threads]
    let mut records: Vec<BenchRecord> = benches
        .iter()
        .flat_map(|b| {
            ALGORITHMS.iter().flat_map(|alg| {
                REPRS.iter().flat_map(|repr| {
                    THREADS.iter().map(|t| {
                        BenchRecord::new(
                            b.name.clone(),
                            format!("{}/{}/t{t}", alg.name(), repr.name()),
                        )
                    })
                })
            })
        })
        .collect();
    let cell = |bi: usize, ai: usize, ri: usize, ti: usize| {
        ((bi * ALGORITHMS.len() + ai) * REPRS.len() + ri) * THREADS.len() + ti
    };
    for rep in 0..repeats {
        eprintln!("pass {}/{repeats}", rep + 1);
        for (bi, bench) in benches.iter().enumerate() {
            for (ai, &alg) in ALGORITHMS.iter().enumerate() {
                for (ri, &repr) in REPRS.iter().enumerate() {
                    let mut reference = None;
                    for (ti, &threads) in THREADS.iter().enumerate() {
                        let c = run_once(
                            bench,
                            alg,
                            repr,
                            threads,
                            &mut records[cell(bi, ai, ri, ti)],
                        );
                        match &reference {
                            None => reference = Some(c),
                            Some(r) => assert_eq!(
                                *r,
                                c,
                                "{} {} {} diverged at {threads} threads",
                                bench.name,
                                alg.name(),
                                repr.name()
                            ),
                        }
                    }
                }
            }
        }
    }

    // Acceptance summary: LCD+HCD over bitmaps on the largest benchmark,
    // speedup of 4 threads against 1 (best-of-N, as the paper reports).
    let largest = benches
        .iter()
        .enumerate()
        .max_by_key(|(_, b)| b.reduced.total())
        .map(|(i, _)| i)
        .expect("suite is non-empty");
    let lcd_hcd = ALGORITHMS
        .iter()
        .position(|&a| a == Algorithm::LcdHcd)
        .expect("LCD+HCD is benchmarked");
    let t1 = records[cell(largest, lcd_hcd, 0, 0)].best();
    let t4 = records[cell(largest, lcd_hcd, 0, 2)].best();
    let speedup = t1 / t4;
    let hw = std::thread::available_parallelism().map_or(1, usize::from);
    let json = render_bench_json(
        &[("repeats", format!("{repeats}"))],
        &records,
        &[
            ("largest_bench", format!("\"{}\"", benches[largest].name)),
            ("available_parallelism", format!("{hw}")),
            ("lcd_hcd_bitmap_t1_seconds", format!("{t1:.6}")),
            ("lcd_hcd_bitmap_t4_seconds", format!("{t4:.6}")),
            ("lcd_hcd_bitmap_t4_speedup", format!("{speedup:.3}")),
        ],
    );

    std::fs::write("BENCH_par.json", &json).expect("write BENCH_par.json");
    eprintln!("wrote BENCH_par.json");
    println!(
        "LCD+HCD/bitmap on {}: 1 thread {t1:.3}s, 4 threads {t4:.3}s ({speedup:.2}x)",
        benches[largest].name
    );
    if hw < 4 {
        println!(
            "note: only {hw} hardware thread(s) available — the worker phase is clamped \
             to the hardware, so parity (~1.0x) is the expected ceiling here"
        );
    }
    if speedup >= 1.0 {
        println!("acceptance: PASS (4 threads no slower than 1 on the largest workload)");
    } else {
        println!("acceptance: CHECK (4 threads must beat 1 thread wall-clock)");
    }
}
