//! Propagation-mode shoot-out: full-set vs difference propagation
//! (`--prop diff`) on the paper's fastest configuration (LCD+HCD over
//! bitmaps), across the six bundled workloads, written to
//! `BENCH_prop.json` in the stable `name/config/median/best` schema.
//!
//! Both modes produce bit-identical solutions and §5.3 counters (enforced
//! by `tests/prop_differential.rs`); what this bench records is the cost:
//! wall time per mode, plus the `propagated_bytes` counter showing how
//! many set-bytes each mode actually pushed along constraint edges.
//!
//! Runs at scale 0.3 by default (`ANT_SCALE` overrides) — large enough
//! that redundant re-propagation dominates — with interleaved repetitions
//! like `pts_bench`. The acceptance summary reports the worst-case time
//! regression of diff mode and its byte reduction on the two largest
//! workloads (wine, linux).
//!
//! ```text
//! cargo run --release -p ant-bench --bin prop_bench
//! ```

use ant_bench::runner::{prepare_suite, repeats_from_env};
use ant_bench::schema::{render_bench_json, BenchRecord};
use ant_core::{solve_dyn, Algorithm, PropMode, PtsKind, SolverConfig};
use ant_frontend::suite::scale_from_env;

fn main() {
    if std::env::var("ANT_SCALE").is_err() {
        // The issue's acceptance bar: all six workloads at scale >= 0.3.
        std::env::set_var("ANT_SCALE", "0.3");
    }
    let benches = prepare_suite();
    let repeats = {
        let r = repeats_from_env();
        if std::env::var("ANT_BENCH_REPEATS").is_err() && std::env::var("ANT_REPEATS").is_err() {
            5
        } else {
            r
        }
    };
    let scale = scale_from_env();

    let mut records: Vec<BenchRecord> = benches
        .iter()
        .flat_map(|b| {
            PropMode::ALL.map(|prop| {
                BenchRecord::new(
                    b.name.clone(),
                    format!(
                        "{}/{}/{prop}",
                        Algorithm::LcdHcd.name(),
                        PtsKind::Bitmap.name()
                    ),
                )
            })
        })
        .collect();
    let cell = |bi: usize, pi: usize| bi * PropMode::ALL.len() + pi;
    let mut sent_bytes = vec![u64::MAX; records.len()];
    let mut full_equiv_bytes = vec![u64::MAX; records.len()];
    for rep in 0..repeats {
        eprintln!("pass {}/{repeats}", rep + 1);
        for (bi, bench) in benches.iter().enumerate() {
            for (pi, &prop) in PropMode::ALL.iter().enumerate() {
                let config = SolverConfig::new(Algorithm::LcdHcd).with_prop(prop);
                let out = solve_dyn(&bench.program, &config, PtsKind::Bitmap);
                let i = cell(bi, pi);
                records[i].samples.push(out.stats.solve_time.as_secs_f64());
                // Byte counters are deterministic per cell.
                sent_bytes[i] = sent_bytes[i].min(out.stats.propagated_bytes);
                full_equiv_bytes[i] = full_equiv_bytes[i].min(out.stats.propagated_full_bytes);
            }
        }
    }
    for (r, (&sent, &full)) in records
        .iter_mut()
        .zip(sent_bytes.iter().zip(&full_equiv_bytes))
    {
        r.extra.push(("propagated_bytes", format!("{sent}")));
        r.extra.push(("propagated_full_bytes", format!("{full}")));
    }

    // Acceptance: diff regresses no workload by > 2% (median vs median)
    // and cuts propagated bytes on the two largest workloads.
    let mut worst_regression = f64::NEG_INFINITY;
    let mut worst_name = String::new();
    let mut per_bench_summary: Vec<(&'static str, String)> = Vec::new();
    let mut big_two_reduced = true;
    for (bi, bench) in benches.iter().enumerate() {
        let full_i = cell(bi, 0);
        let diff_i = cell(bi, 1);
        let full_t = records[full_i].median();
        let diff_t = records[diff_i].median();
        let regression = 100.0 * (diff_t / full_t - 1.0);
        if regression > worst_regression {
            worst_regression = regression;
            worst_name = bench.name.clone();
        }
        let bytes_saved =
            100.0 * (1.0 - sent_bytes[diff_i] as f64 / (sent_bytes[full_i] as f64).max(1.0));
        if matches!(bench.name.as_str(), "wine" | "linux")
            && sent_bytes[diff_i] >= sent_bytes[full_i]
        {
            big_two_reduced = false;
        }
        println!(
            "{:<12} full {:>8.3}s  diff {:>8.3}s  ({regression:+.1}% time, {bytes_saved:.1}% fewer propagated bytes)",
            bench.name, full_t, diff_t,
        );
        per_bench_summary.push((
            // Leaked once per workload per run: six short strings.
            Box::leak(format!("{}_diff_time_delta_percent", bench.name).into_boxed_str()),
            format!("{regression:.2}"),
        ));
    }
    let pass = worst_regression <= 2.0 && big_two_reduced;
    let mut summary = vec![
        (
            "config",
            format!(
                "\"{}/{}\"",
                Algorithm::LcdHcd.name(),
                PtsKind::Bitmap.name()
            ),
        ),
        ("worst_regression_percent", format!("{worst_regression:.2}")),
        ("worst_regression_bench", format!("\"{worst_name}\"")),
        ("wine_linux_bytes_reduced", format!("{big_two_reduced}")),
        ("accepted", format!("{pass}")),
    ];
    summary.extend(per_bench_summary);
    let json = render_bench_json(
        &[
            ("scale", format!("{scale}")),
            ("repeats", format!("{repeats}")),
        ],
        &records,
        &summary,
    );
    std::fs::write("BENCH_prop.json", &json).expect("write BENCH_prop.json");
    eprintln!("wrote BENCH_prop.json");
    if pass {
        println!(
            "acceptance: PASS (worst time delta {worst_regression:+.1}% on {worst_name}, \
             wine+linux bytes reduced)"
        );
    } else {
        println!(
            "acceptance: CHECK (worst time delta {worst_regression:+.1}% on {worst_name}, \
             wine+linux bytes reduced: {big_two_reduced})"
        );
    }
}
