//! `trace_report` — per-solver, per-phase breakdown of a JSONL trace.
//!
//! ```text
//! ant solve prog.c --algorithm lcd-hcd --trace-out trace.jsonl
//! cargo run --release -p ant-bench --bin trace_report trace.jsonl
//! ```

use ant_bench::trace::{render, summarize};
use std::process::ExitCode;

fn main() -> ExitCode {
    let args: Vec<String> = std::env::args().skip(1).collect();
    let [path] = args.as_slice() else {
        eprintln!("usage: trace_report <trace.jsonl>");
        return ExitCode::FAILURE;
    };
    let text = match std::fs::read_to_string(path) {
        Ok(text) => text,
        Err(e) => {
            eprintln!("error: cannot read {path}: {e}");
            return ExitCode::FAILURE;
        }
    };
    match summarize(&text) {
        Ok(summary) => {
            print!("{}", render(&summary));
            ExitCode::SUCCESS
        }
        Err(e) => {
            eprintln!("error: {path}: {e}");
            ExitCode::FAILURE
        }
    }
}
