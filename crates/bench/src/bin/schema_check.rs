//! Validates every `BENCH_*.json` in the working directory against the
//! stable schema of `ant_bench::schema`: a `results` array whose entries
//! are flat one-line JSON objects carrying at least
//! `name`/`config`/`median`/`best`, plus a trailing `summary` object.
//! Exits non-zero (failing `scripts/bench.sh`) on the first violation, so
//! a bench binary that drifts from the schema cannot silently ship
//! incomparable numbers.
//!
//! ```text
//! cargo run --release -p ant-bench --bin schema_check
//! ```

use ant_core::obs::parse_object;

fn check_file(path: &str, text: &str) -> Result<usize, String> {
    if !text.contains("\"results\"") {
        return Err(format!("{path}: missing a \"results\" array"));
    }
    if !text.contains("\"summary\"") {
        return Err(format!("{path}: missing the trailing \"summary\" object"));
    }
    let mut results = 0;
    for line in text.lines() {
        let trimmed = line.trim();
        if !trimmed.starts_with("{\"name\"") {
            continue;
        }
        let obj = parse_object(trimmed.trim_end_matches(','))
            .map_err(|e| format!("{path}: unparseable result line ({e}): {trimmed}"))?;
        for key in ["name", "config"] {
            if obj.get(key).and_then(|v| v.as_str()).is_none() {
                return Err(format!(
                    "{path}: result missing string \"{key}\": {trimmed}"
                ));
            }
        }
        for key in ["median", "best"] {
            if obj.get(key).and_then(|v| v.as_f64()).is_none() {
                return Err(format!(
                    "{path}: result missing number \"{key}\": {trimmed}"
                ));
            }
        }
        results += 1;
    }
    if results == 0 {
        return Err(format!("{path}: no result lines found"));
    }
    Ok(results)
}

fn main() {
    let mut files: Vec<String> = std::fs::read_dir(".")
        .expect("read working directory")
        .filter_map(|e| e.ok())
        .filter_map(|e| e.file_name().into_string().ok())
        .filter(|n| n.starts_with("BENCH_") && n.ends_with(".json"))
        .collect();
    files.sort();
    if files.is_empty() {
        eprintln!("schema_check: no BENCH_*.json files in the working directory");
        std::process::exit(1);
    }
    let mut failed = false;
    for f in &files {
        let text = std::fs::read_to_string(f).expect("read bench file");
        match check_file(f, &text) {
            Ok(n) => println!("{f}: OK ({n} results)"),
            Err(e) => {
                eprintln!("schema_check: {e}");
                failed = true;
            }
        }
    }
    if failed {
        std::process::exit(1);
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use ant_bench::schema::{render_bench_json, BenchRecord};

    #[test]
    fn accepts_schema_output_and_rejects_drift() {
        let mut r = BenchRecord::new("emacs", "lcd+hcd/bitmap/full");
        r.samples = vec![0.5, 0.25];
        let good = render_bench_json(
            &[("scale", "0.3".into())],
            &[r],
            &[("accepted", "true".into())],
        );
        assert_eq!(check_file("good.json", &good), Ok(1));
        assert!(check_file("bad.json", "{}").is_err());
        let noname = good.replace("\"name\"", "\"nom\"");
        assert!(check_file("noname.json", &noname).is_err());
    }
}
