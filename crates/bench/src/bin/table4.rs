//! Table 4: memory consumption in MiB for the nine algorithms, with
//! sparse-bitmap points-to sets.
//!
//! The paper measures process RSS; we report instrumented bytes of the
//! dominant structures (points-to sets, constraint-graph edges, auxiliary
//! tables). Note: the paper's BLQ rows are flat because it pre-allocates a
//! BDD pool sized for the largest benchmark; ours grow with actual use —
//! see EXPERIMENTS.md.
//!
//! A second section repeats the sweep with the interned (`shared`)
//! representation, whose hash-consed intern table stores each distinct set
//! once — the memory win of deduplication shows up directly here.
//!
//! ```text
//! cargo run --release -p ant-bench --bin table4
//! ```

use ant_bench::render::{mib, table};
use ant_bench::runner::{prepare_suite, repeats_from_env, run_suite, PreparedBench, SuiteResults};
use ant_core::{Algorithm, PtsKind};

fn mem_rows(benches: &[PreparedBench], results: &SuiteResults) -> Vec<(String, Vec<String>)> {
    Algorithm::TABLE3
        .iter()
        .map(|&alg| {
            (
                alg.name().to_owned(),
                benches
                    .iter()
                    .map(|b| mib(results.mib(alg, &b.name)))
                    .collect(),
            )
        })
        .collect()
}

fn main() {
    let benches = prepare_suite();
    let repeats = repeats_from_env();
    let columns: Vec<&str> = benches.iter().map(|b| b.name.as_str()).collect();

    let bitmap = run_suite(&benches, &Algorithm::TABLE3, repeats, PtsKind::Bitmap);
    println!("Table 4: memory consumption (MiB), bitmap points-to sets\n");
    println!(
        "{}",
        table("Algorithm", &columns, &mem_rows(&benches, &bitmap))
    );

    let shared = run_suite(&benches, &Algorithm::TABLE3, repeats, PtsKind::Shared);
    println!("Table 4b: memory consumption (MiB), shared (interned) points-to sets\n");
    println!(
        "{}",
        table("Algorithm", &columns, &mem_rows(&benches, &shared))
    );
    println!("Paper shape: bitmap algorithms grow with benchmark size; BLQ stays small/flat.");
}
