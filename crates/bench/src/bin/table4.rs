//! Table 4: memory consumption in MiB for the nine algorithms, with
//! sparse-bitmap points-to sets.
//!
//! The paper measures process RSS; we report instrumented bytes of the
//! dominant structures (points-to sets, constraint-graph edges, auxiliary
//! tables). Note: the paper's BLQ rows are flat because it pre-allocates a
//! BDD pool sized for the largest benchmark; ours grow with actual use —
//! see EXPERIMENTS.md.
//!
//! ```text
//! cargo run --release -p ant-bench --bin table4
//! ```

use ant_bench::render::{mib, table};
use ant_bench::runner::{prepare_suite, repeats_from_env, run_suite};
use ant_core::{Algorithm, BitmapPts};

fn main() {
    let benches = prepare_suite();
    let results = run_suite::<BitmapPts>(&benches, &Algorithm::TABLE3, repeats_from_env());
    let columns: Vec<&str> = benches.iter().map(|b| b.name.as_str()).collect();
    let rows: Vec<(String, Vec<String>)> = Algorithm::TABLE3
        .iter()
        .map(|&alg| {
            (
                alg.name().to_owned(),
                benches
                    .iter()
                    .map(|b| mib(results.mib(alg, &b.name)))
                    .collect(),
            )
        })
        .collect();
    println!("Table 4: memory consumption (MiB), bitmap points-to sets\n");
    println!("{}", table("Algorithm", &columns, &rows));
    println!("Paper shape: bitmap algorithms grow with benchmark size; BLQ stays small/flat.");
}
