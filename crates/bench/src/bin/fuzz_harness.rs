//! Structure-aware differential fuzzer for the serving path (DESIGN.md
//! §15): seeded program generation + mutation + adversarial `serve`
//! request streams, with every finding auto-minimized and pinned into the
//! regression corpus.
//!
//! ```text
//! cargo run --release -p ant-bench --bin fuzz_harness -- \
//!     [--seed N] [--programs N] [--requests N] [--corpus DIR]
//! ```
//!
//! Iteration counts default to `$FUZZ_ITERS` (or 500). The run is
//! deterministic per seed. Exit status: `0` when every input was handled
//! cleanly; `1` when any *new* corpus entry was pinned — the entry is the
//! reproducer, named `{category}-{contenthash}.{consts|reqs}` under the
//! corpus directory and replayed forever by `tests/fuzz_regressions.rs`.

use ant_bench::fuzz;
use std::path::PathBuf;
use std::process::ExitCode;

struct Args {
    seed: u64,
    programs: usize,
    requests: usize,
    corpus: PathBuf,
}

fn parse_args() -> Result<Args, String> {
    let default_iters: usize = match std::env::var("FUZZ_ITERS") {
        Ok(v) => v
            .parse()
            .map_err(|_| format!("FUZZ_ITERS must be a count, got `{v}`"))?,
        Err(_) => 500,
    };
    let mut args = Args {
        seed: 0xA27,
        programs: default_iters,
        requests: default_iters,
        corpus: PathBuf::from("testdata/fuzz"),
    };
    let mut it = std::env::args().skip(1);
    while let Some(flag) = it.next() {
        let mut value = |name: &str| {
            it.next()
                .ok_or_else(|| format!("{name} needs a value (see --help)"))
        };
        match flag.as_str() {
            "--seed" => {
                args.seed = value("--seed")?
                    .parse()
                    .map_err(|e| format!("--seed: {e}"))?
            }
            "--programs" => {
                args.programs = value("--programs")?
                    .parse()
                    .map_err(|e| format!("--programs: {e}"))?;
            }
            "--requests" => {
                args.requests = value("--requests")?
                    .parse()
                    .map_err(|e| format!("--requests: {e}"))?;
            }
            "--corpus" => args.corpus = PathBuf::from(value("--corpus")?),
            "--help" | "-h" => {
                return Err(
                    "usage: fuzz_harness [--seed N] [--programs N] [--requests N] [--corpus DIR]"
                        .to_owned(),
                )
            }
            other => return Err(format!("unknown flag `{other}` (see --help)")),
        }
    }
    Ok(args)
}

fn main() -> ExitCode {
    let args = match parse_args() {
        Ok(args) => args,
        Err(msg) => {
            eprintln!("{msg}");
            return ExitCode::from(2);
        }
    };
    // The oracles run every suspect step under catch_unwind; silence the
    // default per-panic backtrace spew so findings stay readable.
    std::panic::set_hook(Box::new(|_| {}));

    let seeded = match fuzz::seed_corpus(&args.corpus) {
        Ok(seeded) => seeded,
        Err(e) => {
            eprintln!("cannot seed corpus at {}: {e}", args.corpus.display());
            return ExitCode::from(2);
        }
    };
    if !seeded.is_empty() {
        println!(
            "seeded {} historical regression entr{} into {}",
            seeded.len(),
            if seeded.len() == 1 { "y" } else { "ies" },
            args.corpus.display()
        );
    }

    let programs = match fuzz::fuzz_programs(args.seed, args.programs, &args.corpus) {
        Ok(report) => report,
        Err(e) => {
            eprintln!("program fuzzing aborted: {e}");
            return ExitCode::from(2);
        }
    };
    println!(
        "programs: {} iterations (seed {:#x}) — {} verified ({} differential solves), \
         {} rejected with typed errors, {} new corpus entries",
        programs.iterations,
        args.seed,
        programs.verified,
        programs.checks,
        programs.rejected,
        programs.new_entries.len()
    );

    let requests = match fuzz::fuzz_requests(args.seed ^ 0x5EED, args.requests, &args.corpus) {
        Ok(report) => report,
        Err(e) => {
            eprintln!("request fuzzing aborted: {e}");
            return ExitCode::from(2);
        }
    };
    println!(
        "requests: {} streams — {} drained cleanly ({} envelopes checked), {} new corpus entries",
        requests.iterations,
        requests.verified,
        requests.checks,
        requests.new_entries.len()
    );

    let new: Vec<_> = programs
        .new_entries
        .iter()
        .chain(&requests.new_entries)
        .collect();
    if new.is_empty() {
        println!("no new findings");
        ExitCode::SUCCESS
    } else {
        for path in &new {
            eprintln!("NEW FINDING pinned: {}", path.display());
        }
        eprintln!(
            "{} new corpus entr{} — reproduce with `cargo test --test fuzz_regressions`",
            new.len(),
            if new.len() == 1 { "y" } else { "ies" }
        );
        ExitCode::FAILURE
    }
}
