//! Table 6: memory consumption in MiB with BDD points-to sets.
//!
//! ```text
//! cargo run --release -p ant-bench --bin table6
//! ```

use ant_bench::render::{mib, table};
use ant_bench::runner::{prepare_suite, repeats_from_env, run_suite};
use ant_core::{Algorithm, PtsKind};

fn main() {
    let benches = prepare_suite();
    let results = run_suite(
        &benches,
        &Algorithm::TABLE5,
        repeats_from_env(),
        PtsKind::Bdd,
    );
    let columns: Vec<&str> = benches.iter().map(|b| b.name.as_str()).collect();
    let rows: Vec<(String, Vec<String>)> = Algorithm::TABLE5
        .iter()
        .map(|&alg| {
            (
                alg.name().to_owned(),
                benches
                    .iter()
                    .map(|b| mib(results.mib(alg, &b.name)))
                    .collect(),
            )
        })
        .collect();
    println!("Table 6: memory consumption (MiB), BDD points-to sets\n");
    println!("{}", table("Algorithm", &columns, &rows));
    println!("Paper shape: ~5.5x less memory than bitmaps on the larger benchmarks.");
}
