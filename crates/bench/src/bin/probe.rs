//! Quick per-algorithm probe: runs one algorithm on one benchmark.
//!
//! ```text
//! cargo run --release -p ant-bench --bin probe -- LCD+HCD wine [bdd]
//! ```
use ant_bench::runner::prepare_suite;
use ant_core::{solve_dyn, Algorithm, PtsKind, SolverConfig};

fn main() {
    let alg_name = std::env::args().nth(1).unwrap_or_else(|| "HT".into());
    let which = std::env::args().nth(2).unwrap_or_else(|| "emacs".into());
    let use_bdd = std::env::args().nth(3).is_some_and(|s| s == "bdd");
    let alg = Algorithm::parse(&alg_name).expect("algorithm");
    let benches = prepare_suite();
    let b = benches.iter().find(|b| b.name == which).expect("bench");
    eprintln!(
        "solving {} with {} ({} constraints, {} pts)...",
        b.name,
        alg.name(),
        b.program.stats().total(),
        if use_bdd { "bdd" } else { "bitmap" }
    );
    let stats = if use_bdd {
        solve_dyn(&b.program, &SolverConfig::new(alg), PtsKind::Bdd).stats
    } else {
        solve_dyn(&b.program, &SolverConfig::new(alg), PtsKind::Bitmap).stats
    };
    println!(
        "{} on {}: {:.3}s",
        alg.name(),
        b.name,
        stats.solve_time.as_secs_f64()
    );
    println!("{stats}");
}
