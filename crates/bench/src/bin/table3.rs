//! Table 3: solve time in seconds for the nine algorithms over the six
//! benchmarks, with sparse-bitmap points-to sets. The HCD offline analysis
//! is reported separately (first row), exactly as in the paper.
//!
//! A second section repeats the sweep with the interned (`shared`)
//! representation so the copy-on-write trade-off is visible next to the
//! paper's numbers.
//!
//! ```text
//! cargo run --release -p ant-bench --bin table3
//! ```

use ant_bench::render::{secs, table};
use ant_bench::runner::{prepare_suite, repeats_from_env, run_suite, PreparedBench, SuiteResults};
use ant_core::{Algorithm, PtsKind};

fn time_rows(benches: &[PreparedBench], results: &SuiteResults) -> Vec<(String, Vec<String>)> {
    Algorithm::TABLE3
        .iter()
        .map(|&alg| {
            (
                alg.name().to_owned(),
                benches
                    .iter()
                    .map(|b| secs(results.seconds(alg, &b.name)))
                    .collect(),
            )
        })
        .collect()
}

fn main() {
    let benches = prepare_suite();
    let repeats = repeats_from_env();
    let columns: Vec<&str> = benches.iter().map(|b| b.name.as_str()).collect();

    let bitmap = run_suite(&benches, &Algorithm::TABLE3, repeats, PtsKind::Bitmap);
    let mut rows = vec![(
        "HCD-Offline".to_owned(),
        benches
            .iter()
            .map(|b| secs(b.hcd_offline_time.as_secs_f64()))
            .collect(),
    )];
    rows.extend(time_rows(&benches, &bitmap));
    println!("Table 3: performance (seconds), bitmap points-to sets\n");
    println!("{}", table("Algorithm", &columns, &rows));

    let shared = run_suite(&benches, &Algorithm::TABLE3, repeats, PtsKind::Shared);
    println!("Table 3b: performance (seconds), shared (interned) points-to sets\n");
    println!(
        "{}",
        table("Algorithm", &columns, &time_rows(&benches, &shared))
    );
    println!("Paper shape: HT < PKH < BLQ; LCD ~ HT; X+HCD beats X; LCD+HCD fastest.");
}
