//! Table 3: solve time in seconds for the nine algorithms over the six
//! benchmarks, with sparse-bitmap points-to sets. The HCD offline analysis
//! is reported separately (first row), exactly as in the paper.
//!
//! ```text
//! cargo run --release -p ant-bench --bin table3
//! ```

use ant_bench::render::{secs, table};
use ant_bench::runner::{prepare_suite, repeats_from_env, run_suite};
use ant_core::{Algorithm, BitmapPts};

fn main() {
    let benches = prepare_suite();
    let results = run_suite::<BitmapPts>(&benches, &Algorithm::TABLE3, repeats_from_env());

    let columns: Vec<&str> = benches.iter().map(|b| b.name.as_str()).collect();
    let mut rows = Vec::new();
    rows.push((
        "HCD-Offline".to_owned(),
        benches
            .iter()
            .map(|b| secs(b.hcd_offline_time.as_secs_f64()))
            .collect(),
    ));
    for alg in Algorithm::TABLE3 {
        rows.push((
            alg.name().to_owned(),
            benches
                .iter()
                .map(|b| secs(results.seconds(alg, &b.name)))
                .collect(),
        ));
    }
    println!("Table 3: performance (seconds), bitmap points-to sets\n");
    println!("{}", table("Algorithm", &columns, &rows));
    println!("Paper shape: HT < PKH < BLQ; LCD ~ HT; X+HCD beats X; LCD+HCD fastest.");
}
