//! Table 5: solve time in seconds with **BDD** points-to sets (each
//! variable has its own BDD over a shared manager), for the seven
//! algorithms the paper lists (BLQ is excluded: it is already BDD-based).
//!
//! ```text
//! cargo run --release -p ant-bench --bin table5
//! ```

use ant_bench::render::{secs, table};
use ant_bench::runner::{prepare_suite, repeats_from_env, run_suite};
use ant_core::{Algorithm, PtsKind};

fn main() {
    let benches = prepare_suite();
    let results = run_suite(
        &benches,
        &Algorithm::TABLE5,
        repeats_from_env(),
        PtsKind::Bdd,
    );
    let columns: Vec<&str> = benches.iter().map(|b| b.name.as_str()).collect();
    let rows: Vec<(String, Vec<String>)> = Algorithm::TABLE5
        .iter()
        .map(|&alg| {
            (
                alg.name().to_owned(),
                benches
                    .iter()
                    .map(|b| secs(results.seconds(alg, &b.name)))
                    .collect(),
            )
        })
        .collect();
    println!("Table 5: performance (seconds), BDD points-to sets\n");
    println!("{}", table("Algorithm", &columns, &rows));
    println!("Paper shape: ~2x slower than bitmaps on average, dominated by bdd_allsat.");
}
