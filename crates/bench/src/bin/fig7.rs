//! Figure 7: per-benchmark performance of the five main algorithms,
//! normalized to LCD (LCD = 1.0).
//!
//! ```text
//! cargo run --release -p ant-bench --bin fig7
//! ```

use ant_bench::render::{geomean, ratio, table};
use ant_bench::runner::{prepare_suite, repeats_from_env, run_suite};
use ant_core::{Algorithm, PtsKind};

fn main() {
    let benches = prepare_suite();
    let results = run_suite(
        &benches,
        &Algorithm::MAIN,
        repeats_from_env(),
        PtsKind::Bitmap,
    );
    let columns: Vec<&str> = benches.iter().map(|b| b.name.as_str()).collect();
    let rows: Vec<(String, Vec<String>)> = Algorithm::MAIN
        .iter()
        .map(|&alg| {
            (
                alg.name().to_owned(),
                benches
                    .iter()
                    .map(|b| {
                        ratio(
                            results.seconds(alg, &b.name)
                                / results.seconds(Algorithm::Lcd, &b.name),
                        )
                    })
                    .collect(),
            )
        })
        .collect();
    println!("Figure 7: time normalized to LCD (lower is faster)\n");
    println!("{}", table("Algorithm", &columns, &rows));
    for alg in [
        Algorithm::Ht,
        Algorithm::Pkh,
        Algorithm::Blq,
        Algorithm::Hcd,
    ] {
        let g = geomean(
            benches
                .iter()
                .map(|b| results.seconds(alg, &b.name) / results.seconds(Algorithm::Lcd, &b.name)),
        );
        println!("{:<4} / LCD = {} (geometric mean)", alg.name(), ratio(g));
    }
    println!("\nPaper: LCD is 1.05x faster than HT, 2.1x faster than PKH, 6.8x faster than BLQ.");
}
