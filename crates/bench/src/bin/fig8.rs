//! Figure 8: each main algorithm normalized to its HCD-enhanced
//! counterpart — the speedup Hybrid Cycle Detection delivers.
//!
//! ```text
//! cargo run --release -p ant-bench --bin fig8
//! ```

use ant_bench::render::{geomean, ratio, table};
use ant_bench::runner::{prepare_suite, repeats_from_env, run_suite};
use ant_core::{Algorithm, PtsKind};

fn main() {
    let benches = prepare_suite();
    let pairs = [
        (Algorithm::Ht, Algorithm::HtHcd),
        (Algorithm::Pkh, Algorithm::PkhHcd),
        (Algorithm::Blq, Algorithm::BlqHcd),
        (Algorithm::Lcd, Algorithm::LcdHcd),
    ];
    let algs: Vec<Algorithm> = pairs.iter().flat_map(|&(a, b)| [a, b]).collect();
    let results = run_suite(&benches, &algs, repeats_from_env(), PtsKind::Bitmap);
    let columns: Vec<&str> = benches.iter().map(|b| b.name.as_str()).collect();
    let rows: Vec<(String, Vec<String>)> = pairs
        .iter()
        .map(|&(plain, hcd)| {
            (
                format!("{} / {}", plain.name(), hcd.name()),
                benches
                    .iter()
                    .map(|b| ratio(results.seconds(plain, &b.name) / results.seconds(hcd, &b.name)))
                    .collect(),
            )
        })
        .collect();
    println!("Figure 8: time normalized to the HCD-enhanced counterpart (>1 = HCD helps)\n");
    println!("{}", table("Pair", &columns, &rows));
    for &(plain, hcd) in &pairs {
        let g = geomean(
            benches
                .iter()
                .map(|b| results.seconds(plain, &b.name) / results.seconds(hcd, &b.name)),
        );
        println!(
            "HCD speeds up {:<4} by {} (geometric mean)",
            plain.name(),
            ratio(g)
        );
    }
    println!("\nPaper: HCD improves HT by 3.2x, PKH by 5x, BLQ by 1.1x, LCD by 3.2x.");
}
