//! Figure 10: bitmap memory normalized to BDD memory (the memory saving of
//! the compact representation), averaged over the benchmarks.
//!
//! ```text
//! cargo run --release -p ant-bench --bin fig10
//! ```

use ant_bench::render::{geomean, ratio, table};
use ant_bench::runner::{prepare_suite, repeats_from_env, run_suite};
use ant_core::{Algorithm, PtsKind};

fn main() {
    let benches = prepare_suite();
    let repeats = repeats_from_env();
    eprintln!("bitmap sweep:");
    let bitmap = run_suite(&benches, &Algorithm::TABLE5, repeats, PtsKind::Bitmap);
    eprintln!("bdd sweep:");
    let bdd = run_suite(&benches, &Algorithm::TABLE5, repeats, PtsKind::Bdd);
    let columns: Vec<&str> = benches.iter().map(|b| b.name.as_str()).collect();
    let mut rows = Vec::new();
    let mut avgs = Vec::new();
    for alg in Algorithm::TABLE5 {
        rows.push((
            alg.name().to_owned(),
            benches
                .iter()
                .map(|b| ratio(bitmap.mib(alg, &b.name) / bdd.mib(alg, &b.name)))
                .collect(),
        ));
        avgs.push((
            alg,
            geomean(
                benches
                    .iter()
                    .map(|b| bitmap.mib(alg, &b.name) / bdd.mib(alg, &b.name)),
            ),
        ));
    }
    println!("Figure 10: bitmap memory / BDD memory (>1 = BDDs smaller)\n");
    println!("{}", table("Algorithm", &columns, &rows));
    for (alg, g) in &avgs {
        println!("{:<8} average {}", alg.name(), ratio(*g));
    }
    let overall = geomean(avgs.iter().map(|&(_, g)| g));
    println!(
        "\nOverall: BDDs use {} less memory (paper: ~5.5x; ours counts only live\n\
         structures, the paper also counts BuDDy's fixed pool — see EXPERIMENTS.md).",
        ratio(overall)
    );
}
