//! Serve-protocol throughput and latency: an [`AnalysisSession`] loaded
//! with the linux workload answers 10k-query streams, timed end to end at
//! fan-out widths 1 and 4. Two streams are measured:
//!
//! * `mixed10k` — the robustness stream: points-to, may-alias, resolve and
//!   stats requests interleaved with deliberately malformed lines and
//!   unknown variables. Stats requests are barriers, so this stream also
//!   exercises batch fragmentation.
//! * `bulk10k` — the scaling stream: read-only queries only, which the
//!   session fans out over scoped threads in one run. Whether `t4` beats
//!   `t1` depends on the cores actually available; the preamble records
//!   `cores` so the cells stay interpretable on pinned containers.
//!
//! Written to `BENCH_serve.json` in the stable `name/config/median/best`
//! schema with `p50_micros`, `p99_micros`, `qps` and `errors` extras per
//! cell. The acceptance criterion mirrors the session's design contract:
//! every request — including the malformed ones — gets exactly one
//! envelope and the session never dies; the p50 per-request latency lands
//! in the summary.
//!
//! ```text
//! cargo run --release -p ant-bench --bin serve_bench
//! ```

use ant_bench::runner::repeats_from_env;
use ant_bench::schema::{median, render_bench_json, BenchRecord};
use ant_core::session::{AnalysisSession, SessionOptions};
use ant_core::{Algorithm, SolverConfig};
use ant_frontend::suite;

const QUERIES: usize = 10_000;
const THREADS: [usize; 2] = [1, 4];

/// Deterministic linear-congruential stream, so every repetition and both
/// fan-out widths answer the identical query mix.
struct Lcg(u64);

impl Lcg {
    fn next(&mut self) -> u64 {
        self.0 = self
            .0
            .wrapping_mul(6364136223846793005)
            .wrapping_add(1442695040888963407);
        self.0 >> 33
    }
}

/// The robustness mix: ~58% points-to, ~20% may-alias, ~10% resolve,
/// ~4% stats (a barrier op), ~4% unknown vars, ~4% malformed lines.
fn mixed_stream(names: &[&str]) -> Vec<String> {
    let mut rng = Lcg(0x5eed);
    (0..QUERIES)
        .map(|i| {
            let name = names[rng.next() as usize % names.len()];
            match rng.next() % 100 {
                0..=57 => format!(r#"{{"op":"points_to","var":"{name}","id":{i}}}"#),
                58..=77 => {
                    let other = names[rng.next() as usize % names.len()];
                    format!(r#"{{"op":"may_alias","a":"{name}","b":"{other}","id":{i}}}"#)
                }
                78..=87 => format!(r#"{{"op":"resolve","var":"{name}","id":{i}}}"#),
                88..=91 => format!(r#"{{"op":"stats","id":{i}}}"#),
                92..=95 => format!(r#"{{"op":"points_to","var":"__no_such_var__","id":{i}}}"#),
                _ => format!("{{malformed line {i}"),
            }
        })
        .collect()
}

/// The scaling mix: read-only queries only, one uninterrupted batch.
fn bulk_stream(names: &[&str]) -> Vec<String> {
    let mut rng = Lcg(0xb01d);
    (0..QUERIES)
        .map(|i| {
            let name = names[rng.next() as usize % names.len()];
            if rng.next().is_multiple_of(4) {
                let other = names[rng.next() as usize % names.len()];
                format!(r#"{{"op":"may_alias","a":"{name}","b":"{other}","id":{i}}}"#)
            } else {
                format!(r#"{{"op":"points_to","var":"{name}","id":{i}}}"#)
            }
        })
        .collect()
}

struct Measured {
    elapsed: f64,
    p50: f64,
    p99: f64,
    errors: usize,
}

/// Loads a fresh session, warms the solve, then times the stream.
fn run_stream(
    program: &ant_constraints::Program,
    threads: usize,
    lines: &[&str],
    warm: &str,
) -> Measured {
    let mut opts = SessionOptions::new(SolverConfig::new(Algorithm::LcdHcd));
    opts.threads = threads;
    let mut session = AnalysisSession::new(opts).expect("session options are valid");
    session
        .load_program(program.clone())
        .expect("linux workload loads");
    // Warm the solve outside the timed window: the stream measures query
    // answering, not the one-time solve.
    assert!(session.handle_line(warm).ok);

    let start = std::time::Instant::now();
    let replies = session.handle_lines(lines);
    let elapsed = start.elapsed().as_secs_f64();

    assert_eq!(
        replies.len(),
        lines.len(),
        "every request gets exactly one envelope"
    );
    let errors = replies.iter().filter(|r| !r.ok).count();
    let mut lat: Vec<f64> = replies.iter().map(|r| r.micros as f64).collect();
    lat.sort_by(f64::total_cmp);
    Measured {
        elapsed,
        p50: median(&lat),
        p99: lat[(lat.len() * 99) / 100 - 1],
        errors,
    }
}

fn main() {
    let repeats = repeats_from_env();
    let bench = suite::benchmark("linux", suite::scale_from_env()).expect("linux workload exists");
    let program = bench.program();
    eprintln!("linux workload: {}", program.stats());

    let names: Vec<String> = program
        .vars()
        .map(|v| program.var_name(v).to_owned())
        .collect();
    let name_refs: Vec<&str> = names.iter().map(String::as_str).collect();
    let warm = format!(r#"{{"op":"points_to","var":"{}"}}"#, name_refs[0]);
    let streams: [(&str, Vec<String>); 2] = [
        ("mixed10k", mixed_stream(&name_refs)),
        ("bulk10k", bulk_stream(&name_refs)),
    ];

    // records[stream × threads]
    let mut records: Vec<BenchRecord> = streams
        .iter()
        .flat_map(|(stream, _)| {
            THREADS
                .iter()
                .map(move |t| BenchRecord::new("linux", format!("serve/{stream}/t{t}")))
        })
        .collect();
    let cell = |si: usize, ti: usize| si * THREADS.len() + ti;
    let mut p50 = vec![0.0f64; records.len()];

    for rep in 0..repeats {
        eprintln!("pass {}/{repeats}", rep + 1);
        for (si, (stream, lines)) in streams.iter().enumerate() {
            let line_refs: Vec<&str> = lines.iter().map(String::as_str).collect();
            for (ti, &threads) in THREADS.iter().enumerate() {
                let m = run_stream(&program, threads, &line_refs, &warm);
                if *stream == "mixed10k" {
                    assert!(
                        m.errors > 0 && m.errors < QUERIES / 2,
                        "the malformed/unknown slices error, the rest answer"
                    );
                } else {
                    assert_eq!(m.errors, 0, "the bulk stream is all-valid");
                }
                let r = &mut records[cell(si, ti)];
                r.samples.push(m.elapsed);
                // Last repetition wins: extras carry one representative value.
                r.extra = vec![
                    ("p50_micros", format!("{:.1}", m.p50)),
                    ("p99_micros", format!("{:.1}", m.p99)),
                    ("qps", format!("{:.0}", QUERIES as f64 / m.elapsed)),
                    ("errors", format!("{}", m.errors)),
                ];
                p50[cell(si, ti)] = m.p50;
            }
        }
    }

    let qps_best = |i: usize| QUERIES as f64 / records[i].best();
    let json = render_bench_json(
        &[
            ("repeats", format!("{repeats}")),
            ("queries", format!("{QUERIES}")),
            (
                "cores",
                format!(
                    "{}",
                    std::thread::available_parallelism().map_or(1, usize::from)
                ),
            ),
        ],
        &records,
        &[
            ("workload", "\"linux\"".to_owned()),
            ("mixed_p50_micros_t1", format!("{:.1}", p50[cell(0, 0)])),
            ("mixed_qps_best_t1", format!("{:.0}", qps_best(cell(0, 0)))),
            ("mixed_qps_best_t4", format!("{:.0}", qps_best(cell(0, 1)))),
            ("bulk_qps_best_t1", format!("{:.0}", qps_best(cell(1, 0)))),
            ("bulk_qps_best_t4", format!("{:.0}", qps_best(cell(1, 1)))),
            (
                "bulk_t4_speedup",
                format!(
                    "{:.3}",
                    records[cell(1, 0)].best() / records[cell(1, 1)].best()
                ),
            ),
        ],
    );
    std::fs::write("BENCH_serve.json", &json).expect("write BENCH_serve.json");
    eprintln!("wrote BENCH_serve.json");
    for (si, (stream, _)) in streams.iter().enumerate() {
        for (ti, &t) in THREADS.iter().enumerate() {
            let i = cell(si, ti);
            println!(
                "{stream}/t{t}: best {:.3}s ({:.0} qps), p50 {:.1}us",
                records[i].best(),
                qps_best(i),
                p50[i]
            );
        }
    }
    println!("acceptance: PASS (10k mixed queries, one envelope each, session survived)");
}
