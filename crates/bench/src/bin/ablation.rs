//! Ablations beyond the paper's tables:
//!
//! * worklist strategies (FIFO / LIFO / LRF / divided LRF — §5.1 notes the
//!   divided worklist is "significantly better" than a single one);
//! * the naive Figure 1 baseline with no cycle detection, showing why
//!   online cycle detection is "critical for scalability".
//!
//! ```text
//! cargo run --release -p ant-bench --bin ablation [benchmark]
//! ```

use ant_bench::render::{secs, table};
use ant_bench::runner::{prepare_suite, repeats_from_env};
use ant_common::worklist::WorklistKind;
use ant_core::{solve_dyn, Algorithm, PtsKind, SolverConfig};

fn main() {
    let which = std::env::args().nth(1).unwrap_or_else(|| "gimp".to_owned());
    let benches = prepare_suite();
    let bench = benches
        .iter()
        .find(|b| b.name == which)
        .unwrap_or_else(|| panic!("unknown benchmark {which}"));
    let repeats = repeats_from_env();

    println!("Worklist-strategy ablation on `{}` (seconds)\n", bench.name);
    let algs = [Algorithm::Lcd, Algorithm::Hcd, Algorithm::LcdHcd];
    let columns: Vec<String> = WorklistKind::ALL.iter().map(|w| w.to_string()).collect();
    let column_refs: Vec<&str> = columns.iter().map(String::as_str).collect();
    let mut rows = Vec::new();
    for alg in algs {
        let mut cells = Vec::new();
        for wk in WorklistKind::ALL {
            let config = SolverConfig {
                worklist: wk,
                ..SolverConfig::new(alg)
            };
            let mut best = f64::INFINITY;
            for _ in 0..repeats {
                let out = solve_dyn(&bench.program, &config, PtsKind::Bitmap);
                best = best.min(out.stats.solve_time.as_secs_f64());
            }
            cells.push(secs(best));
        }
        rows.push((alg.name().to_owned(), cells));
    }
    println!("{}", table("Algorithm", &column_refs, &rows));

    println!("Cycle-detection ablation on `{}` (seconds)\n", bench.name);
    let mut rows = Vec::new();
    for alg in [
        Algorithm::Basic,
        Algorithm::Pkh03,
        Algorithm::Pkh,
        Algorithm::Lcd,
        Algorithm::LcdDiff,
        Algorithm::LcdHcd,
    ] {
        let out = solve_dyn(&bench.program, &SolverConfig::new(alg), PtsKind::Bitmap);
        rows.push((
            alg.name().to_owned(),
            vec![
                secs(out.stats.solve_time.as_secs_f64()),
                out.stats.nodes_collapsed.to_string(),
                out.stats.propagations.to_string(),
            ],
        ));
    }
    println!(
        "{}",
        table("Algorithm", &["time", "collapsed", "propagations"], &rows)
    );
    println!("Paper: without cycle detection the larger benchmarks run out of memory.");
}
