//! Table 2: the benchmark suite — LOC, original constraints, reduced
//! constraints after offline variable substitution, and the breakdown of
//! the reduced constraints by form.
//!
//! ```text
//! cargo run --release -p ant-bench --bin table2
//! ```

use ant_bench::render::table;
use ant_bench::runner::prepare_suite;

fn main() {
    let benches = prepare_suite();
    let rows: Vec<(String, Vec<String>)> = benches
        .iter()
        .map(|b| {
            let red = 100.0 * (1.0 - b.reduced.total() as f64 / b.original.total() as f64);
            (
                b.name.clone(),
                vec![
                    format!("{}K", b.loc / 1000),
                    b.original.total().to_string(),
                    b.reduced.total().to_string(),
                    b.reduced.base.to_string(),
                    b.reduced.simple.to_string(),
                    (b.reduced.complex1 + b.reduced.complex2).to_string(),
                    format!("{red:.0}%"),
                    format!("{:.3}s", b.ovs_time.as_secs_f64()),
                ],
            )
        })
        .collect();
    println!(
        "Table 2: benchmarks (scale {}, set ANT_SCALE to change)\n",
        ant_frontend::suite::scale_from_env()
    );
    println!(
        "{}",
        table(
            "Name",
            &[
                "LOC",
                "Original",
                "Reduced",
                "Base",
                "Simple",
                "Complex",
                "Reduction",
                "OVS time"
            ],
            &rows
        )
    );
    println!("Paper: reduction is 60-77%; OVS takes <1s (emacs/ghostscript) to 1-3s.");
}
