//! Representation shoot-out: wall time and points-to bytes per
//! solver × representation over the bundled workload suite, written to
//! `BENCH_pts.json` in the stable `name/config/median/best` schema
//! (see `ant_bench::schema`).
//!
//! Runs are *interleaved* (default 20 repetitions, `ANT_BENCH_REPEATS`):
//! the outer loop is the repetition, the inner loops visit every
//! (benchmark, algorithm, representation) cell once per repetition, so
//! slow drift (thermal, allocator state) hits all cells equally instead of
//! biasing whichever representation ran last.
//!
//! ```text
//! cargo run --release -p ant-bench --bin pts_bench
//! ```

use ant_bench::runner::{prepare_suite, repeats_from_env};
use ant_bench::schema::{render_bench_json, BenchRecord};
use ant_core::{solve_dyn, Algorithm, PtsKind, SolverConfig};
use ant_frontend::suite::scale_from_env;

const ALGORITHMS: [Algorithm; 4] = [
    Algorithm::Lcd,
    Algorithm::Hcd,
    Algorithm::LcdHcd,
    Algorithm::Ht,
];
const REPRS: [PtsKind; 2] = [PtsKind::Bitmap, PtsKind::Shared];

fn main() {
    let benches = prepare_suite();
    let repeats = {
        // The acceptance protocol for this table is best-of-20 unless the
        // caller asks otherwise.
        let r = repeats_from_env();
        if std::env::var("ANT_BENCH_REPEATS").is_err() && std::env::var("ANT_REPEATS").is_err() {
            20
        } else {
            r
        }
    };
    let scale = scale_from_env();

    // records[bench × alg × repr], plus the deterministic pts_bytes per cell.
    let mut records: Vec<BenchRecord> = benches
        .iter()
        .flat_map(|b| {
            ALGORITHMS.iter().flat_map(|alg| {
                REPRS.iter().map(|repr| {
                    BenchRecord::new(b.name.clone(), format!("{}/{}", alg.name(), repr.name()))
                })
            })
        })
        .collect();
    let cell = |bi: usize, ai: usize, ri: usize| {
        bi * ALGORITHMS.len() * REPRS.len() + ai * REPRS.len() + ri
    };
    let mut pts_bytes = vec![usize::MAX; records.len()];
    for rep in 0..repeats {
        eprintln!("pass {}/{repeats}", rep + 1);
        for (bi, bench) in benches.iter().enumerate() {
            for (ai, &alg) in ALGORITHMS.iter().enumerate() {
                for (ri, &repr) in REPRS.iter().enumerate() {
                    let out = solve_dyn(&bench.program, &SolverConfig::new(alg), repr);
                    let i = cell(bi, ai, ri);
                    records[i].samples.push(out.stats.solve_time.as_secs_f64());
                    // pts_bytes is deterministic per cell; keep the min for symmetry.
                    pts_bytes[i] = pts_bytes[i].min(out.stats.pts_bytes);
                }
            }
        }
    }
    for (r, &bytes) in records.iter_mut().zip(&pts_bytes) {
        r.extra.push(("pts_bytes", format!("{bytes}")));
    }

    // Acceptance summary: LCD+HCD best-time totals across the suite per repr.
    let lcd_hcd = ALGORITHMS
        .iter()
        .position(|&a| a == Algorithm::LcdHcd)
        .expect("LCD+HCD is benchmarked");
    let mut totals = [[0.0f64, 0.0f64]; 2]; // [repr][seconds, bytes]
    for bi in 0..benches.len() {
        for (ri, t) in totals.iter_mut().enumerate() {
            let i = cell(bi, lcd_hcd, ri);
            t[0] += records[i].best();
            t[1] += pts_bytes[i] as f64;
        }
    }
    let bytes_reduction = 100.0 * (1.0 - totals[1][1] / totals[0][1]);
    let json = render_bench_json(
        &[
            ("scale", format!("{scale}")),
            ("repeats", format!("{repeats}")),
        ],
        &records,
        &[
            ("lcd_hcd_bitmap_seconds", format!("{:.6}", totals[0][0])),
            ("lcd_hcd_shared_seconds", format!("{:.6}", totals[1][0])),
            (
                "lcd_hcd_bitmap_pts_bytes",
                format!("{}", totals[0][1] as u64),
            ),
            (
                "lcd_hcd_shared_pts_bytes",
                format!("{}", totals[1][1] as u64),
            ),
            (
                "lcd_hcd_pts_bytes_reduction_percent",
                format!("{bytes_reduction:.1}"),
            ),
        ],
    );

    std::fs::write("BENCH_pts.json", &json).expect("write BENCH_pts.json");
    eprintln!("wrote BENCH_pts.json");
    println!(
        "LCD+HCD suite totals: bitmap {:.3}s / {:.1} MiB pts, shared {:.3}s / {:.1} MiB pts \
         ({bytes_reduction:.1}% fewer pts bytes)",
        totals[0][0],
        totals[0][1] / (1024.0 * 1024.0),
        totals[1][0],
        totals[1][1] / (1024.0 * 1024.0),
    );
    if totals[1][0] <= totals[0][0] && bytes_reduction >= 30.0 {
        println!("acceptance: PASS (shared is faster and ≥30% smaller)");
    } else {
        println!("acceptance: CHECK (shared must beat bitmap time and cut pts bytes ≥30%)");
    }
}
