//! Representation shoot-out: wall time and points-to bytes per
//! solver × representation over the bundled workload suite, written to
//! `BENCH_pts.json`.
//!
//! Runs are *interleaved* best-of-N (default 20, `ANT_BENCH_REPEATS`):
//! the outer loop is the repetition, the inner loops visit every
//! (benchmark, algorithm, representation) cell once per repetition, so
//! slow drift (thermal, allocator state) hits all cells equally instead of
//! biasing whichever representation ran last.
//!
//! ```text
//! cargo run --release -p ant-bench --bin pts_bench
//! ```

use ant_bench::runner::{prepare_suite, repeats_from_env, PreparedBench};
use ant_core::{solve_dyn, Algorithm, PtsKind, SolverConfig};
use ant_frontend::suite::scale_from_env;
use std::fmt::Write as _;

const ALGORITHMS: [Algorithm; 4] = [
    Algorithm::Lcd,
    Algorithm::Hcd,
    Algorithm::LcdHcd,
    Algorithm::Ht,
];
const REPRS: [PtsKind; 2] = [PtsKind::Bitmap, PtsKind::Shared];

/// Best-so-far for one (bench, algorithm, repr) cell.
#[derive(Clone, Copy)]
struct Cell {
    seconds: f64,
    pts_bytes: usize,
}

impl Default for Cell {
    fn default() -> Self {
        Cell {
            seconds: f64::INFINITY,
            pts_bytes: usize::MAX,
        }
    }
}

fn run_once(bench: &PreparedBench, alg: Algorithm, pts: PtsKind, cell: &mut Cell) {
    let out = solve_dyn(&bench.program, &SolverConfig::new(alg), pts);
    let secs = out.stats.solve_time.as_secs_f64();
    if secs < cell.seconds {
        cell.seconds = secs;
    }
    // pts_bytes is deterministic per cell; keep the min for symmetry.
    cell.pts_bytes = cell.pts_bytes.min(out.stats.pts_bytes);
}

fn main() {
    let benches = prepare_suite();
    let repeats = {
        // The acceptance protocol for this table is best-of-20 unless the
        // caller asks otherwise.
        let r = repeats_from_env();
        if std::env::var("ANT_BENCH_REPEATS").is_err() && std::env::var("ANT_REPEATS").is_err() {
            20
        } else {
            r
        }
    };
    let scale = scale_from_env();

    // cells[bench][alg][repr]
    let mut cells = vec![[[Cell::default(); REPRS.len()]; ALGORITHMS.len()]; benches.len()];
    for rep in 0..repeats {
        eprintln!("pass {}/{repeats}", rep + 1);
        for (bi, bench) in benches.iter().enumerate() {
            for (ai, &alg) in ALGORITHMS.iter().enumerate() {
                for (ri, &repr) in REPRS.iter().enumerate() {
                    run_once(bench, alg, repr, &mut cells[bi][ai][ri]);
                }
            }
        }
    }

    let mut json = String::new();
    let _ = writeln!(json, "{{");
    let _ = writeln!(json, "  \"scale\": {scale},");
    let _ = writeln!(json, "  \"repeats\": {repeats},");
    let _ = writeln!(json, "  \"results\": [");
    let mut first = true;
    for (bi, bench) in benches.iter().enumerate() {
        for (ai, &alg) in ALGORITHMS.iter().enumerate() {
            for (ri, repr) in REPRS.iter().enumerate() {
                let c = &cells[bi][ai][ri];
                if !first {
                    let _ = writeln!(json, ",");
                }
                first = false;
                let _ = write!(
                    json,
                    "    {{\"bench\": \"{}\", \"algorithm\": \"{}\", \"repr\": \"{}\", \
                     \"seconds\": {:.6}, \"pts_bytes\": {}}}",
                    bench.name,
                    alg.name(),
                    repr.name(),
                    c.seconds,
                    c.pts_bytes
                );
            }
        }
    }
    let _ = writeln!(json, "\n  ],");

    // Acceptance summary: LCD+HCD totals across the suite per repr.
    let lcd_hcd = ALGORITHMS
        .iter()
        .position(|&a| a == Algorithm::LcdHcd)
        .expect("LCD+HCD is benchmarked");
    let mut totals = [[0.0f64, 0.0f64]; 2]; // [repr][seconds, bytes]
    for row in &cells {
        for (ri, t) in totals.iter_mut().enumerate() {
            t[0] += row[lcd_hcd][ri].seconds;
            t[1] += row[lcd_hcd][ri].pts_bytes as f64;
        }
    }
    let bytes_reduction = 100.0 * (1.0 - totals[1][1] / totals[0][1]);
    let _ = writeln!(json, "  \"summary\": {{");
    let _ = writeln!(
        json,
        "    \"lcd_hcd_bitmap_seconds\": {:.6},\n    \"lcd_hcd_shared_seconds\": {:.6},",
        totals[0][0], totals[1][0]
    );
    let _ = writeln!(
        json,
        "    \"lcd_hcd_bitmap_pts_bytes\": {},\n    \"lcd_hcd_shared_pts_bytes\": {},",
        totals[0][1] as u64, totals[1][1] as u64
    );
    let _ = writeln!(
        json,
        "    \"lcd_hcd_pts_bytes_reduction_percent\": {bytes_reduction:.1}"
    );
    let _ = writeln!(json, "  }}");
    let _ = writeln!(json, "}}");

    std::fs::write("BENCH_pts.json", &json).expect("write BENCH_pts.json");
    eprintln!("wrote BENCH_pts.json");
    println!(
        "LCD+HCD suite totals: bitmap {:.3}s / {:.1} MiB pts, shared {:.3}s / {:.1} MiB pts \
         ({bytes_reduction:.1}% fewer pts bytes)",
        totals[0][0],
        totals[0][1] / (1024.0 * 1024.0),
        totals[1][0],
        totals[1][1] / (1024.0 * 1024.0),
    );
    if totals[1][0] <= totals[0][0] && bytes_reduction >= 30.0 {
        println!("acceptance: PASS (shared is faster and ≥30% smaller)");
    } else {
        println!("acceptance: CHECK (shared must beat bitmap time and cut pts bytes ≥30%)");
    }
}
