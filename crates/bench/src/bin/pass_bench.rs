//! Offline pass-pipeline shoot-out: constraint reduction and preprocessing
//! time per benchmark × pass subset, written to `BENCH_passes.json` in
//! the stable `name/config/median/best` schema (see `ant_bench::schema`;
//! the subset is part of `config`, e.g. `"passes:normalize,ovs"`).
//!
//! The paper reports that offline variable substitution removes 60–77% of
//! the constraints (Table 2); the acceptance summary checks the `ovs`
//! subset against that band at the current scale.
//!
//! ```text
//! cargo run --release -p ant-bench --bin pass_bench
//! ```

use ant_bench::schema::{render_bench_json, BenchRecord};
use ant_constraints::pipeline::{HcdPass, NormalizePass, OvsPass, PassPipeline, Prepared};
use ant_constraints::Program;
use ant_frontend::suite::{default_suite, scale_from_env};

/// The subsets benchmarked, by the `--passes` spellings users type.
const SUBSETS: [&str; 4] = ["normalize", "ovs", "normalize,ovs", "normalize,ovs,hcd"];

fn pipeline_for(spec: &str) -> PassPipeline {
    // Built by hand instead of `PassPipeline::parse` so the binary fails to
    // compile (not at runtime) if a pass is renamed.
    match spec {
        "normalize" => PassPipeline::empty().push(NormalizePass),
        "ovs" => PassPipeline::empty().push(OvsPass),
        "normalize,ovs" => PassPipeline::standard(),
        "normalize,ovs,hcd" => PassPipeline::empty()
            .push(NormalizePass)
            .push(OvsPass)
            .push(HcdPass),
        other => unreachable!("unknown subset `{other}`"),
    }
}

struct Row {
    record: BenchRecord,
    subset: &'static str,
    before: usize,
    after: usize,
    reduction: f64,
    hcd_pairs: usize,
}

fn measure(bench: &str, subset: &'static str, program: &Program, repeats: usize) -> Row {
    let mut record = BenchRecord::new(bench, format!("passes:{subset}"));
    let mut last: Option<Prepared> = None;
    for _ in 0..repeats.max(1) {
        let prepared = pipeline_for(subset).run(program);
        record.samples.push(prepared.elapsed.as_secs_f64());
        last = Some(prepared);
    }
    let prepared = last.expect("at least one run");
    let mut row = Row {
        record,
        subset,
        before: prepared.constraints_before(),
        after: prepared.constraints_after(),
        reduction: prepared.reduction_percent(),
        hcd_pairs: prepared.hcd.as_ref().map_or(0, |h| h.num_pairs()),
    };
    row.record
        .extra
        .push(("constraints_before", format!("{}", row.before)));
    row.record
        .extra
        .push(("constraints_after", format!("{}", row.after)));
    row.record
        .extra
        .push(("reduction_percent", format!("{:.2}", row.reduction)));
    row.record
        .extra
        .push(("hcd_pairs", format!("{}", row.hcd_pairs)));
    row
}

fn main() {
    let scale = scale_from_env();
    let repeats = ant_bench::runner::repeats_from_env().max(3);
    let mut rows = Vec::new();
    for b in default_suite() {
        let program = b.program();
        for subset in SUBSETS {
            rows.push(measure(b.name(), subset, &program, repeats));
        }
    }

    // Acceptance: the `ovs` subset against the paper's Table 2 band.
    let ovs_rows: Vec<&Row> = rows.iter().filter(|r| r.subset == "ovs").collect();
    let min = ovs_rows
        .iter()
        .map(|r| r.reduction)
        .fold(f64::MAX, f64::min);
    let max = ovs_rows
        .iter()
        .map(|r| r.reduction)
        .fold(f64::MIN, f64::max);
    let mean = ovs_rows.iter().map(|r| r.reduction).sum::<f64>() / ovs_rows.len().max(1) as f64;
    let records: Vec<BenchRecord> = rows.iter().map(|r| r.record.clone()).collect();
    let json = render_bench_json(
        &[
            ("scale", format!("{scale}")),
            ("repeats", format!("{repeats}")),
            ("paper_ovs_band_percent", "[60.0, 77.0]".into()),
        ],
        &records,
        &[
            ("ovs_reduction_min_percent", format!("{min:.2}")),
            ("ovs_reduction_mean_percent", format!("{mean:.2}")),
            ("ovs_reduction_max_percent", format!("{max:.2}")),
        ],
    );

    std::fs::write("BENCH_passes.json", &json).expect("write BENCH_passes.json");
    eprintln!("wrote BENCH_passes.json");

    println!(
        "{:<12} {:<20} {:>10} {:>10} {:>10} {:>10} {:>10}",
        "benchmark", "passes", "before", "after", "cut %", "hcd pairs", "time(ms)"
    );
    for r in &rows {
        println!(
            "{:<12} {:<20} {:>10} {:>10} {:>9.1}% {:>10} {:>10.2}",
            r.record.name,
            r.subset,
            r.before,
            r.after,
            r.reduction,
            r.hcd_pairs,
            r.record.best() * 1000.0
        );
    }
    println!("\nOVS reduction across the suite: {min:.1}%..{max:.1}% (mean {mean:.1}%)");
    // The synthetic suite tracks the paper loosely at small scales, so the
    // acceptance band is padded by 5 points on both sides.
    if min >= 55.0 && max <= 82.0 {
        println!("acceptance: PASS (within the paper's 60-77% band, ±5)");
    } else {
        println!("acceptance: CHECK (paper reports 60-77% constraint reduction)");
    }
}
