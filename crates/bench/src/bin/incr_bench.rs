//! Warm-start shoot-out: resuming a retained solver state over a small
//! constraint delta vs re-solving the union program from scratch, across
//! the bundled workloads, written to `BENCH_incr.json` in the stable
//! `name/config/median/best` schema.
//!
//! For each workload the constraint list is split so the last 1%, 5% or
//! 20% form the delta; the base prefix is solved once with
//! `solve_dyn_resumable`, then `resume_dyn` re-enters the retained state
//! over the full union. Resumed solutions are bit-identical to the
//! scratch union solve (enforced by `tests/incremental_differential.rs`
//! and re-checked here on the first repetition); what this bench records
//! is the cost: the scratch union solve time vs the resume-step time
//! (`stats.solve_time` covers only the most recent re-solve).
//!
//! The acceptance summary requires the warm start to beat scratch on
//! every workload for deltas ≤ 5% under both LCD and PKH — the claim the
//! resumable-state machinery exists to deliver.
//!
//! ```text
//! cargo run --release -p ant-bench --bin incr_bench
//! ```

use ant_bench::runner::repeats_from_env;
use ant_bench::schema::{render_bench_json, BenchRecord};
use ant_constraints::pipeline::PassPipeline;
use ant_constraints::Program;
use ant_core::{resume_dyn, solve_dyn, solve_dyn_resumable, Algorithm, PtsKind, SolverConfig};
use ant_frontend::suite::{default_suite, scale_from_env};

const DELTAS: [usize; 3] = [1, 5, 20];
const ALGS: [Algorithm; 2] = [Algorithm::Lcd, Algorithm::Pkh];
const MODES: [&str; 2] = ["scratch", "resume"];

fn main() {
    if std::env::var("ANT_SCALE").is_err() {
        std::env::set_var("ANT_SCALE", "0.05");
    }
    // The incremental lane of the session/CLI runs the normalize-only
    // pipeline (OVS/HCD are not delta-stable), so that is the program
    // space this bench splits and solves.
    let normalize = PassPipeline::parse("normalize").expect("normalize is a valid pass");
    let benches: Vec<(String, Program)> = default_suite()
        .into_iter()
        .map(|b| (b.name().to_owned(), normalize.run(&b.program()).program))
        .collect();
    let repeats = {
        let r = repeats_from_env();
        if std::env::var("ANT_BENCH_REPEATS").is_err() && std::env::var("ANT_REPEATS").is_err() {
            3
        } else {
            r
        }
    };
    let scale = scale_from_env();

    let mut records: Vec<BenchRecord> = Vec::new();
    for (name, program) in &benches {
        for alg in ALGS {
            for pct in DELTAS {
                let n = program.constraints().len();
                let delta_len = (n * pct) / 100;
                for mode in MODES {
                    let mut r = BenchRecord::new(
                        name.clone(),
                        format!("{}/bitmap/delta{pct}%/{mode}", alg.name()),
                    );
                    r.extra.push(("delta_constraints", format!("{delta_len}")));
                    records.push(r);
                }
            }
        }
    }
    // records are laid out (bench, alg, delta, mode) row-major.
    let cell = |bi: usize, ai: usize, di: usize, mi: usize| {
        ((bi * ALGS.len() + ai) * DELTAS.len() + di) * MODES.len() + mi
    };

    for rep in 0..repeats {
        eprintln!("pass {}/{repeats}", rep + 1);
        for (bi, (name, program)) in benches.iter().enumerate() {
            for (ai, &alg) in ALGS.iter().enumerate() {
                let cfg = SolverConfig::new(alg);
                for (di, &pct) in DELTAS.iter().enumerate() {
                    let n = program.constraints().len();
                    let cut = n - (n * pct) / 100;
                    let base = program.with_constraints(program.constraints()[..cut].to_vec());
                    let scratch = solve_dyn(program, &cfg, PtsKind::Bitmap);
                    let (_, state) = solve_dyn_resumable(&base, &cfg, PtsKind::Bitmap);
                    let state = state.expect("lcd/pkh over bitmaps are resumable");
                    let (resumed, _) = resume_dyn(state, program)
                        .expect("the union extends its own constraint prefix");
                    if rep == 0 {
                        assert!(
                            resumed.solution.equiv(&scratch.solution),
                            "{name}/{alg}/delta{pct}%: resume diverged from scratch at {:?}",
                            resumed.solution.first_difference(&scratch.solution)
                        );
                    }
                    records[cell(bi, ai, di, 0)]
                        .samples
                        .push(scratch.stats.solve_time.as_secs_f64());
                    records[cell(bi, ai, di, 1)]
                        .samples
                        .push(resumed.stats.solve_time.as_secs_f64());
                }
            }
        }
    }

    // Acceptance: for every workload, resume beats scratch (median vs
    // median) on both small deltas (1% and 5%) under both algorithms.
    let mut accepted = true;
    let mut worst_ratio = f64::NEG_INFINITY;
    let mut worst_cell = String::new();
    let mut summary: Vec<(&'static str, String)> = Vec::new();
    for (ai, &alg) in ALGS.iter().enumerate() {
        for (di, &pct) in DELTAS.iter().enumerate() {
            let mut ratios: Vec<f64> = Vec::new();
            for (bi, (name, _)) in benches.iter().enumerate() {
                let scratch_t = records[cell(bi, ai, di, 0)].median();
                let resume_t = records[cell(bi, ai, di, 1)].median();
                let ratio = resume_t / scratch_t;
                ratios.push(ratio);
                if pct <= 5 {
                    if ratio >= 1.0 {
                        accepted = false;
                    }
                    if ratio > worst_ratio {
                        worst_ratio = ratio;
                        worst_cell = format!("{name}/{}/delta{pct}%", alg.name());
                    }
                }
                println!(
                    "{name:<12} {:<6} delta {pct:>2}%: scratch {scratch_t:>9.4}s  \
                     resume {resume_t:>9.4}s  ({:.1}% of scratch)",
                    alg.name(),
                    100.0 * ratio
                );
            }
            let geomean = (ratios.iter().map(|r| r.ln()).sum::<f64>() / ratios.len() as f64).exp();
            summary.push((
                // Leaked once per (algorithm, delta) cell per run.
                Box::leak(
                    format!("{}_delta{pct}_resume_over_scratch", alg.name()).into_boxed_str(),
                ),
                format!("{geomean:.4}"),
            ));
        }
    }
    summary.push(("worst_small_delta_ratio", format!("{worst_ratio:.4}")));
    summary.push(("worst_small_delta_cell", format!("\"{worst_cell}\"")));
    summary.push(("accepted", format!("{accepted}")));
    let json = render_bench_json(
        &[
            ("scale", format!("{scale}")),
            ("repeats", format!("{repeats}")),
        ],
        &records,
        &summary,
    );
    std::fs::write("BENCH_incr.json", &json).expect("write BENCH_incr.json");
    eprintln!("wrote BENCH_incr.json");
    if accepted {
        println!(
            "acceptance: PASS (warm start beats scratch on all <=5% deltas; \
             worst ratio {worst_ratio:.2} on {worst_cell})"
        );
    } else {
        println!(
            "acceptance: CHECK (a <=5% delta cell did not beat scratch; \
             worst ratio {worst_ratio:.2} on {worst_cell})"
        );
    }
}
