//! Figure 6: the paper's headline chart — LCD+HCD versus the three
//! state-of-the-art algorithms (HT, PKH, BLQ), per benchmark. The paper
//! plots seconds on a log scale; we print the series plus the speedup of
//! LCD+HCD over each baseline.
//!
//! ```text
//! cargo run --release -p ant-bench --bin fig6
//! ```

use ant_bench::render::{geomean, ratio, secs, table};
use ant_bench::runner::{prepare_suite, repeats_from_env, run_suite};
use ant_core::{Algorithm, PtsKind};

fn main() {
    let benches = prepare_suite();
    let algs = [
        Algorithm::Ht,
        Algorithm::Pkh,
        Algorithm::Blq,
        Algorithm::LcdHcd,
    ];
    let results = run_suite(&benches, &algs, repeats_from_env(), PtsKind::Bitmap);
    let columns: Vec<&str> = benches.iter().map(|b| b.name.as_str()).collect();
    let rows: Vec<(String, Vec<String>)> = algs
        .iter()
        .map(|&alg| {
            (
                alg.name().to_owned(),
                benches
                    .iter()
                    .map(|b| secs(results.seconds(alg, &b.name)))
                    .collect(),
            )
        })
        .collect();
    println!("Figure 6: LCD+HCD vs state-of-the-art (seconds; plot on log scale)\n");
    println!("{}", table("Series", &columns, &rows));
    for base in [Algorithm::Ht, Algorithm::Pkh, Algorithm::Blq] {
        let speedup =
            geomean(benches.iter().map(|b| {
                results.seconds(base, &b.name) / results.seconds(Algorithm::LcdHcd, &b.name)
            }));
        println!(
            "LCD+HCD vs {:<4}: {} faster (geometric mean)",
            base.name(),
            ratio(speedup)
        );
    }
    println!("\nPaper: 3.2x vs HT, 6.4x vs PKH, 20.6x vs BLQ.");
}
