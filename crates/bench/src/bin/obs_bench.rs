//! Provenance-overhead benchmark: the LCD+HCD/bitmap config solved three
//! ways over the bundled workload suite, written to `BENCH_obs.json` in
//! the stable `name/config/median/best` schema:
//!
//! * `seed` — the plain solve path, exactly what the pre-provenance
//!   binary executed (no recorder field is touched).
//! * `prov-off` — the same entry point with the recorder *absent*: the
//!   shipped default, whose only extra cost is one null-pointer branch
//!   per insertion site. The acceptance gate compares this to `seed`.
//! * `prov-on` — the full derivation recorder attached
//!   ([`solve_dyn_recorded`]), for the record; this config is allowed to
//!   cost whatever explanation fidelity costs.
//!
//! Runs are interleaved (the outer loop is the repetition) so slow drift
//! hits all three configs equally.
//!
//! ```text
//! cargo run --release -p ant-bench --bin obs_bench            # measure
//! cargo run --release -p ant-bench --bin obs_bench -- --gate  # CI gate
//! ```
//!
//! With `--gate` the process exits nonzero when the `prov-off` median
//! regresses more than 2% against the `seed` median summed over the
//! suite — the observer-overhead budget the recorder must stay inside.

use ant_bench::runner::{prepare_suite, repeats_from_env};
use ant_bench::schema::{median, render_bench_json, BenchRecord};
use ant_core::{solve_dyn, solve_dyn_recorded, Algorithm, PtsKind, SolverConfig};
use std::process::ExitCode;

const GATE_THRESHOLD_PERCENT: f64 = 2.0;

#[derive(Clone, Copy, PartialEq)]
enum Config {
    Seed,
    Off,
    On,
}

impl Config {
    const ALL: [Config; 3] = [Config::Seed, Config::Off, Config::On];

    fn name(self) -> &'static str {
        match self {
            Config::Seed => "seed",
            Config::Off => "prov-off",
            Config::On => "prov-on",
        }
    }
}

fn main() -> ExitCode {
    let gate = std::env::args().any(|a| a == "--gate");
    let benches = prepare_suite();
    let repeats = {
        let r = repeats_from_env();
        if std::env::var("ANT_BENCH_REPEATS").is_err() && std::env::var("ANT_REPEATS").is_err() {
            9
        } else {
            r
        }
    };
    let config = SolverConfig::new(Algorithm::LcdHcd);

    let mut records: Vec<BenchRecord> = benches
        .iter()
        .flat_map(|b| {
            Config::ALL
                .iter()
                .map(|c| BenchRecord::new(b.name.clone(), c.name()))
        })
        .collect();
    for rep in 0..repeats {
        eprintln!("pass {}/{repeats}", rep + 1);
        for (bi, bench) in benches.iter().enumerate() {
            for (ci, &cfg) in Config::ALL.iter().enumerate() {
                let stats = match cfg {
                    Config::Seed | Config::Off => {
                        solve_dyn(&bench.program, &config, PtsKind::Bitmap).stats
                    }
                    Config::On => {
                        solve_dyn_recorded(&bench.program, &config, PtsKind::Bitmap)
                            .0
                            .stats
                    }
                };
                records[bi * Config::ALL.len() + ci]
                    .samples
                    .push(stats.solve_time.as_secs_f64());
            }
        }
    }

    // Suite-level medians per config: median of per-benchmark medians is
    // noise-prone at small scales, so gate on the summed medians instead.
    let total = |cfg: Config| -> f64 {
        records
            .iter()
            .filter(|r| r.config == cfg.name())
            .map(|r| r.median())
            .sum()
    };
    let (seed, off, on) = (total(Config::Seed), total(Config::Off), total(Config::On));
    let off_overhead = 100.0 * (off / seed - 1.0);
    let on_overhead = 100.0 * (on / seed - 1.0);

    let scale = ant_frontend::suite::scale_from_env();
    let json = render_bench_json(
        &[
            ("scale", format!("{scale}")),
            ("repeats", format!("{repeats}")),
            ("algorithm", "\"lcd+hcd\"".into()),
            ("repr", "\"bitmap\"".into()),
        ],
        &records,
        &[
            ("seed_median_seconds", format!("{seed:.6}")),
            ("prov_off_median_seconds", format!("{off:.6}")),
            ("prov_on_median_seconds", format!("{on:.6}")),
            ("prov_off_overhead_percent", format!("{off_overhead:.2}")),
            ("prov_on_overhead_percent", format!("{on_overhead:.2}")),
            (
                "gate_threshold_percent",
                format!("{GATE_THRESHOLD_PERCENT:.1}"),
            ),
        ],
    );
    std::fs::write("BENCH_obs.json", &json).expect("write BENCH_obs.json");
    eprintln!("wrote BENCH_obs.json");

    println!(
        "LCD+HCD/bitmap suite medians: seed {seed:.4}s | recorder-off {off:.4}s \
         ({off_overhead:+.2}%) | recorder-on {on:.4}s ({on_overhead:+.2}%)"
    );
    // Keep `median` exercised on the raw pooled samples too, so the
    // summary can't silently diverge from the per-record schema values.
    debug_assert!((median(&records[0].samples) - records[0].median()).abs() < 1e-12);

    if off_overhead <= GATE_THRESHOLD_PERCENT {
        println!(
            "acceptance: PASS (recorder-off within {GATE_THRESHOLD_PERCENT}% of the seed path)"
        );
        ExitCode::SUCCESS
    } else if gate {
        println!(
            "acceptance: FAIL (recorder-off is {off_overhead:.2}% over seed, \
             budget {GATE_THRESHOLD_PERCENT}%)"
        );
        ExitCode::FAILURE
    } else {
        println!(
            "acceptance: CHECK (recorder-off must stay within \
             {GATE_THRESHOLD_PERCENT}% of the seed path; rerun with --gate to enforce)"
        );
        ExitCode::SUCCESS
    }
}
