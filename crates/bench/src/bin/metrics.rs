//! §5.3 "Understanding the Results": the three decisive counters — nodes
//! collapsed, nodes searched by cycle-detection DFS, and points-to
//! propagations — for HT, PKH, LCD, HCD and the +HCD variants (BLQ is
//! excluded, as in the paper).
//!
//! ```text
//! cargo run --release -p ant-bench --bin metrics
//! ```

use ant_bench::render::table;
use ant_bench::runner::{prepare_suite, repeats_from_env, run_suite};
use ant_core::{Algorithm, PtsKind};

fn main() {
    let benches = prepare_suite();
    let algs = [
        Algorithm::Ht,
        Algorithm::Pkh,
        Algorithm::Lcd,
        Algorithm::Hcd,
        Algorithm::HtHcd,
        Algorithm::PkhHcd,
        Algorithm::LcdHcd,
    ];
    let results = run_suite(&benches, &algs, repeats_from_env(), PtsKind::Bitmap);
    let columns: Vec<&str> = benches.iter().map(|b| b.name.as_str()).collect();

    for (title, pick) in [
        (
            "Nodes collapsed",
            (|s: &ant_core::SolverStats| s.nodes_collapsed) as fn(&ant_core::SolverStats) -> u64,
        ),
        ("Nodes searched (DFS)", |s| s.nodes_searched),
        ("Propagations", |s| s.propagations),
    ] {
        let rows: Vec<(String, Vec<String>)> = algs
            .iter()
            .map(|&alg| {
                (
                    alg.name().to_owned(),
                    benches
                        .iter()
                        .map(|b| {
                            results
                                .get(alg, &b.name)
                                .map(|r| pick(&r.stats).to_string())
                                .unwrap_or_default()
                        })
                        .collect(),
                )
            })
            .collect();
        println!("{title}\n");
        println!("{}", table("Algorithm", &columns, &rows));
    }
    println!("Paper shape: HT/LCD collapse ~as many nodes as PKH; HCD alone collapses fewer.");
    println!("HCD searches zero nodes; HT searches least among the rest; LCD searches most.");
    println!("LCD has the fewest propagations; HCD the most; +HCD cuts propagations sharply.");
}
