//! Benchmarks for the offline passes: offline variable substitution (the
//! §5.1 pre-processing) and HCD's offline analysis (the "HCD-Offline" row
//! of Table 3, which the paper reports is essentially negligible).

use ant_constraints::hcd::HcdOffline;
use ant_constraints::pipeline::{OvsPass, PassPipeline};
use ant_frontend::suite;
use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};

fn bench_offline(c: &mut Criterion) {
    let mut group = c.benchmark_group("offline");
    for name in ["emacs", "wine"] {
        let program = suite::benchmark(name, 0.03).expect("benchmark").program();
        group.bench_with_input(BenchmarkId::new("ovs", name), &program, |b, p| {
            b.iter(|| {
                PassPipeline::empty()
                    .push(OvsPass)
                    .run(p)
                    .constraints_after()
            })
        });
        let reduced = PassPipeline::empty().push(OvsPass).run(&program).program;
        group.bench_with_input(BenchmarkId::new("hcd_offline", name), &reduced, |b, p| {
            b.iter(|| HcdOffline::analyze(p).num_pairs())
        });
        group.bench_with_input(BenchmarkId::new("full_pipeline", name), &program, |b, p| {
            b.iter(|| PassPipeline::full().run(p).constraints_after())
        });
    }
    group.finish();
}

criterion_group!(benches, bench_offline);
criterion_main!(benches);
