//! Microbenchmarks for the GCC-style sparse bitmap (the hot data structure
//! of every bitmap-based solver).

use ant_common::SparseBitmap;
use criterion::{criterion_group, criterion_main, Criterion};
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};

fn random_set(rng: &mut StdRng, n: usize, universe: u32) -> SparseBitmap {
    (0..n).map(|_| rng.gen_range(0..universe)).collect()
}

fn bench_bitmap(c: &mut Criterion) {
    let mut rng = StdRng::seed_from_u64(42);
    let a = random_set(&mut rng, 2000, 100_000);
    let b = random_set(&mut rng, 2000, 100_000);
    let mut sub = a.clone();
    sub.intersect_with(&b); // shared part

    c.bench_function("bitmap/insert_2000", |bch| {
        let mut rng = StdRng::seed_from_u64(7);
        bch.iter(|| {
            let mut s = SparseBitmap::new();
            for _ in 0..2000 {
                s.insert(rng.gen_range(0..100_000));
            }
            s
        })
    });

    c.bench_function("bitmap/union_changed", |bch| {
        bch.iter(|| {
            let mut s = a.clone();
            s.union_with(&b)
        })
    });

    c.bench_function("bitmap/union_noop", |bch| {
        // The fixpoint-solver hot path: union that changes nothing.
        let mut s = a.clone();
        s.union_with(&b);
        bch.iter(|| s.clone().union_with(&a))
    });

    c.bench_function("bitmap/superset_check", |bch| {
        bch.iter(|| a.superset_of(&sub))
    });

    c.bench_function("bitmap/equality", |bch| {
        let a2 = a.clone();
        bch.iter(|| a == a2)
    });

    c.bench_function("bitmap/iterate", |bch| bch.iter(|| a.iter().sum::<u32>()));

    c.bench_function("bitmap/difference_iter", |bch| {
        bch.iter(|| a.difference(&b).count())
    });
}

criterion_group!(benches, bench_bitmap);
criterion_main!(benches);
