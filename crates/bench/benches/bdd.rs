//! Microbenchmarks for the BDD package: set operations (Tables 5/6 path)
//! and the relational products that drive BLQ.

use ant_bdd::{Bdd, BddManager, BddSet};
use criterion::{criterion_group, criterion_main, Criterion};
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};

fn bench_bdd(c: &mut Criterion) {
    c.bench_function("bdd/set_insert_1000", |bch| {
        bch.iter(|| {
            let mut m = BddManager::new();
            let d = m.new_interleaved_domains(&[1 << 16])[0].clone();
            let mut s = BddSet::empty();
            let mut rng = StdRng::seed_from_u64(3);
            for _ in 0..1000 {
                s.insert(&mut m, &d, rng.gen_range(0..1 << 16));
            }
            m.node_count()
        })
    });

    // Shared manager for the read-mostly benchmarks.
    let mut m = BddManager::new();
    let doms = m.new_interleaved_domains(&[1 << 14, 1 << 14, 1 << 14]);
    let (dv, dw, dl) = (doms[0].clone(), doms[1].clone(), doms[2].clone());
    let mut rng = StdRng::seed_from_u64(11);
    let mut rel = Bdd::ZERO;
    let mut pts = Bdd::ZERO;
    for _ in 0..2000 {
        let t = m.tuple(&[
            (&dv, rng.gen_range(0..1 << 14)),
            (&dw, rng.gen_range(0..1 << 14)),
        ]);
        rel = m.or(rel, t);
        let p = m.tuple(&[
            (&dv, rng.gen_range(0..1 << 14)),
            (&dl, rng.gen_range(0..1 << 14)),
        ]);
        pts = m.or(pts, p);
    }
    let cube_v = m.domain_cube(&dv);

    c.bench_function("bdd/relprod_2000x2000", |bch| {
        bch.iter(|| {
            // Clear the memo cache so each iteration measures real work.
            m.clear_caches();
            m.relprod(rel, pts, cube_v)
        })
    });

    c.bench_function("bdd/rename_columns", |bch| {
        bch.iter(|| {
            m.clear_caches();
            m.rename(pts, &dl, &dw)
        })
    });

    c.bench_function("bdd/allsat_enumeration", |bch| {
        let row = m.exists(pts, cube_v);
        bch.iter(|| m.domain_values(row, &dl).len())
    });

    c.bench_function("bdd/satcount", |bch| {
        let row = m.exists(pts, cube_v);
        bch.iter(|| m.domain_len(row, &dl))
    });
}

criterion_group!(benches, bench_bdd);
criterion_main!(benches);
