//! Criterion benchmarks: one per solver on a mid-size workload (Table 3's
//! cells as statistically sampled microbenchmarks).

use ant_constraints::pipeline::PassPipeline;
use ant_core::{solve_dyn, Algorithm, PtsKind, SolverConfig};
use ant_frontend::suite;
use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};

fn bench_solvers(c: &mut Criterion) {
    // A small fixed scale keeps criterion's many iterations affordable.
    let bench = suite::benchmark("emacs", 0.02).expect("emacs exists");
    let program = PassPipeline::standard().run(&bench.program()).program;

    let mut group = c.benchmark_group("solve/emacs@0.02/bitmap");
    for alg in Algorithm::ALL {
        if matches!(alg, Algorithm::Blq | Algorithm::BlqHcd) {
            continue; // BLQ has its own group with fewer samples
        }
        group.bench_with_input(BenchmarkId::from_parameter(alg.name()), &alg, |b, &alg| {
            b.iter(|| solve_dyn(&program, &SolverConfig::new(alg), PtsKind::Bitmap))
        });
    }
    group.finish();

    let mut group = c.benchmark_group("solve/emacs@0.02/bdd-pts");
    group.sample_size(10);
    for alg in [Algorithm::Ht, Algorithm::Lcd, Algorithm::LcdHcd] {
        group.bench_with_input(BenchmarkId::from_parameter(alg.name()), &alg, |b, &alg| {
            b.iter(|| solve_dyn(&program, &SolverConfig::new(alg), PtsKind::Bdd))
        });
    }
    group.finish();

    let mut group = c.benchmark_group("solve/emacs@0.02/blq");
    group.sample_size(10);
    for alg in [Algorithm::Blq, Algorithm::BlqHcd] {
        group.bench_with_input(BenchmarkId::from_parameter(alg.name()), &alg, |b, &alg| {
            b.iter(|| solve_dyn(&program, &SolverConfig::new(alg), PtsKind::Bitmap))
        });
    }
    group.finish();
}

criterion_group!(benches, bench_solvers);
criterion_main!(benches);
