//! Microbenchmarks for strongly-connected-component detection — the
//! operation whose placement (lazy, periodic, offline) is the paper's whole
//! subject.

use ant_constraints::scc::tarjan_scc;
use criterion::{criterion_group, criterion_main, Criterion};
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};

fn chain(n: u32) -> Vec<Vec<u32>> {
    (0..n)
        .map(|i| if i + 1 < n { vec![i + 1] } else { vec![] })
        .collect()
}

fn random_graph(n: u32, edges: usize, seed: u64) -> Vec<Vec<u32>> {
    let mut rng = StdRng::seed_from_u64(seed);
    let mut adj = vec![Vec::new(); n as usize];
    for _ in 0..edges {
        let u = rng.gen_range(0..n);
        let v = rng.gen_range(0..n);
        adj[u as usize].push(v);
    }
    adj
}

fn rings(n: u32, ring: u32) -> Vec<Vec<u32>> {
    // n nodes arranged in rings of `ring`, consecutive rings linked.
    (0..n)
        .map(|i| {
            let base = i / ring * ring;
            let next = base + (i + 1) % ring;
            let mut out = vec![next];
            if i % ring == 0 && base + ring < n {
                out.push(base + ring);
            }
            out
        })
        .collect()
}

fn bench_scc(c: &mut Criterion) {
    let deep = chain(100_000);
    c.bench_function("scc/chain_100k", |b| b.iter(|| tarjan_scc(&deep).num_comps));

    let rand_g = random_graph(20_000, 60_000, 5);
    c.bench_function("scc/random_20k_60k", |b| {
        b.iter(|| tarjan_scc(&rand_g).num_comps)
    });

    let ring_g = rings(30_000, 50);
    c.bench_function("scc/rings_30k", |b| {
        b.iter(|| tarjan_scc(&ring_g).num_comps)
    });
}

criterion_group!(benches, bench_scc);
criterion_main!(benches);
