//! A from-scratch binary decision diagram (BDD) package.
//!
//! This crate is the stand-in for the BuDDy library that the paper uses for
//! its BDD-based experiments. It provides exactly the subset the pointer
//! analysis needs:
//!
//! * a hash-consed node table with an ITE-based apply (so BDD equality is a
//!   pointer comparison — which is what makes Lazy Cycle Detection's
//!   `pts(a) == pts(b)` test O(1) under the BDD representation),
//! * existential quantification and the fused relational product
//!   ([`BddManager::relprod`]) that drives the BLQ solver,
//! * interleaved finite [`Domain`]s for encoding variable and location ids,
//!   with value enumeration (BuDDy's `bdd_allsat`, which §5.4 of the paper
//!   identifies as the dominant cost of BDD points-to sets),
//! * [`BddSet`], a set of integers over a domain — the per-variable
//!   points-to set representation of Tables 5 and 6.
//!
//! # Example
//!
//! ```
//! use ant_bdd::{BddManager, BddSet};
//!
//! let mut m = BddManager::new();
//! let doms = m.new_interleaved_domains(&[1 << 10]);
//! let d = doms[0].clone();
//! let mut s = BddSet::empty();
//! s.insert(&mut m, &d, 3);
//! s.insert(&mut m, &d, 900);
//! assert!(s.contains(&m, &d, 3));
//! assert_eq!(s.len(&m, &d), 2);
//! assert_eq!(s.values(&m, &d), vec![3, 900]);
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

mod domain;
mod manager;
mod set;

pub use domain::Domain;
pub use manager::{Bdd, BddManager, CubeId};
pub use set::BddSet;
