//! Finite domains: encoding integers as blocks of BDD variables.
//!
//! BLQ-style analyses encode relations like *points-to ⊆ Var × Loc* as BDDs
//! over several integer domains. As in BuDDy's `fdd` layer, the bits of all
//! domains created together are **interleaved** in the variable order, which
//! keeps the relation BDDs small when the related values are correlated —
//! the property Berndl et al. identify as essential for performance.

use crate::manager::{Bdd, BddManager, CubeId};

/// A finite domain: a block of BDD variables encoding integers
/// `0..capacity`.
///
/// Bit 0 of [`Domain::vars`] is the most significant bit and has the
/// smallest variable index of the domain.
///
/// # Example
///
/// ```
/// use ant_bdd::BddManager;
///
/// let mut m = BddManager::new();
/// let doms = m.new_interleaved_domains(&[256, 256]);
/// let (v, o) = (doms[0].clone(), doms[1].clone());
/// // The tuple (v=3, o=17) as a BDD over both domains.
/// let t = m.tuple(&[(&v, 3), (&o, 17)]);
/// let row = m.domain_value(&v, 3);
/// let mut anded = m.and(t, row);
/// assert_eq!(anded, t); // t implies v=3
/// ```
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct Domain {
    id: u32,
    bits: Vec<u32>,
    capacity: u64,
}

impl Domain {
    /// Number of bits in the encoding.
    pub fn num_bits(&self) -> usize {
        self.bits.len()
    }

    /// Exclusive upper bound on encodable values.
    pub fn capacity(&self) -> u64 {
        self.capacity
    }

    /// The BDD variable indices of this domain, most significant first.
    pub fn vars(&self) -> &[u32] {
        &self.bits
    }

    /// Position of `var` within this domain's bits, if it belongs to it.
    fn bit_of(&self, var: u32) -> Option<usize> {
        self.bits.iter().position(|&b| b == var)
    }
}

impl BddManager {
    /// Creates a group of domains whose bits are interleaved in the variable
    /// order: bit `k` of every domain precedes bit `k+1` of every domain.
    ///
    /// All domains in the group receive the same number of bits (enough for
    /// the largest capacity), which is what makes cross-domain equality and
    /// renaming relations linear-sized.
    pub fn new_interleaved_domains(&mut self, capacities: &[u64]) -> Vec<Domain> {
        assert!(!capacities.is_empty(), "need at least one domain");
        let max_cap = capacities.iter().copied().max().expect("non-empty");
        let nbits = bits_for(max_cap);
        let ndoms = u32::try_from(capacities.len()).expect("too many domains");
        let base = self.num_vars();
        self.ensure_vars(base + nbits * ndoms);
        capacities
            .iter()
            .enumerate()
            .map(|(j, &cap)| {
                assert!(cap >= 1, "domain capacity must be at least 1");
                let j32 = u32::try_from(j).expect("domain index");
                Domain {
                    id: self.fresh_domain_id(),
                    bits: (0..nbits).map(|b| base + b * ndoms + j32).collect(),
                    capacity: cap,
                }
            })
            .collect()
    }

    /// The BDD encoding `domain == value`.
    ///
    /// # Panics
    ///
    /// Panics if `value` is outside the domain.
    pub fn domain_value(&mut self, d: &Domain, value: u64) -> Bdd {
        assert!(value < d.capacity, "value {value} outside domain");
        let nbits = d.bits.len();
        let mut f = Bdd::ONE;
        // Build bottom-up: from the largest variable (LSB) to the smallest.
        for (i, &var) in d.bits.iter().enumerate().rev() {
            let bit_set = value >> (nbits - 1 - i) & 1 == 1;
            f = if bit_set {
                self.mk_checked(var, Bdd::ZERO, f)
            } else {
                self.mk_checked(var, f, Bdd::ZERO)
            };
        }
        f
    }

    /// A conjunction of `domain == value` constraints — a relation tuple.
    pub fn tuple(&mut self, assignments: &[(&Domain, u64)]) -> Bdd {
        let mut f = Bdd::ONE;
        for &(d, v) in assignments {
            let dv = self.domain_value(d, v);
            f = self.and(f, dv);
        }
        f
    }

    /// The quantification cube containing all bits of `d`.
    pub fn domain_cube(&mut self, d: &Domain) -> CubeId {
        self.register_cube(d.bits.clone())
    }

    /// The quantification cube for several domains at once.
    pub fn domains_cube(&mut self, ds: &[&Domain]) -> CubeId {
        let mut vars = Vec::new();
        for d in ds {
            vars.extend_from_slice(&d.bits);
        }
        self.register_cube(vars)
    }

    /// The equality relation `a == b` between two same-width domains.
    ///
    /// # Panics
    ///
    /// Panics if the domains have different bit widths.
    pub fn domain_equals(&mut self, a: &Domain, b: &Domain) -> Bdd {
        assert_eq!(
            a.bits.len(),
            b.bits.len(),
            "equality requires same-width domains"
        );
        let mut f = Bdd::ONE;
        // Conjoin bit-equalities from LSB upwards so intermediate BDDs stay
        // small under the interleaved order.
        for i in (0..a.bits.len()).rev() {
            let av = self.var(a.bits[i]);
            let bv = self.var(b.bits[i]);
            let x = self.xor(av, bv);
            let eq = self.not(x);
            f = self.and(f, eq);
        }
        f
    }

    /// Renames the `from` domain to the `to` domain in `f`, i.e.
    /// `∃ from. f ∧ (from == to)` — BuDDy's `bdd_replace`, expressed with the
    /// relational product so that it is correct for any variable order.
    pub fn rename(&mut self, f: Bdd, from: &Domain, to: &Domain) -> Bdd {
        let eq = self.domain_equals(from, to);
        let cube = self.domain_cube(from);
        self.relprod(f, eq, cube)
    }

    /// Tests whether `value` satisfies `f` when every variable outside `d`
    /// is treated as "don't care" (i.e. whether the value is in the set
    /// `f` denotes over `d`).
    pub fn domain_contains(&self, f: Bdd, d: &Domain, value: u64) -> bool {
        let nbits = d.bits.len();
        self.eval(f, |var| match d.bit_of(var) {
            Some(i) => value >> (nbits - 1 - i) & 1 == 1,
            None => panic!("domain_contains: function depends on foreign variable {var}"),
        })
    }

    /// Enumerates the values of `d` contained in `f`, ascending — BuDDy's
    /// `bdd_allsat` restricted to one domain.
    ///
    /// # Panics
    ///
    /// Panics if `f` depends on variables outside `d`.
    pub fn domain_values(&self, f: Bdd, d: &Domain) -> Vec<u64> {
        let mut out = Vec::new();
        self.values_rec(f, d, 0, 0, &mut out);
        out
    }

    fn values_rec(&self, f: Bdd, d: &Domain, bit: usize, acc: u64, out: &mut Vec<u64>) {
        if f.is_zero() {
            return;
        }
        let nbits = d.bits.len();
        if bit == nbits {
            assert!(
                f.is_one(),
                "domain_values: function depends on variables outside the domain"
            );
            out.push(acc);
            return;
        }
        let expected = d.bits[bit];
        let weight = 1u64 << (nbits - 1 - bit);
        let fvar = self.root_var(f);
        if !f.is_terminal() && fvar == expected {
            self.values_rec(self.low(f), d, bit + 1, acc, out);
            self.values_rec(self.high(f), d, bit + 1, acc + weight, out);
        } else {
            assert!(
                f.is_terminal() || fvar > expected,
                "domain_values: function depends on variables outside the domain"
            );
            // Don't-care bit: both settings satisfy f.
            self.values_rec(f, d, bit + 1, acc, out);
            self.values_rec(f, d, bit + 1, acc + weight, out);
        }
    }

    /// Number of values of `d` in `f` (BuDDy's `bdd_satcount` over one
    /// domain). Cheaper than materializing [`domain_values`](Self::domain_values).
    pub fn domain_len(&self, f: Bdd, d: &Domain) -> u64 {
        self.sat_count(f, &d.bits)
    }

    fn mk_checked(&mut self, var: u32, low: Bdd, high: Bdd) -> Bdd {
        // `domain_value` builds strictly bottom-up, so plain ITE on a fresh
        // variable is safe and cheap here.
        let v = self.var(var);
        self.ite(v, high, low)
    }
}

fn bits_for(capacity: u64) -> u32 {
    let mut bits = 1;
    while 1u64.checked_shl(bits).is_none_or(|c| c < capacity) {
        bits += 1;
        assert!(bits <= 63, "domain capacity too large");
    }
    bits
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn bits_for_capacities() {
        assert_eq!(bits_for(1), 1);
        assert_eq!(bits_for(2), 1);
        assert_eq!(bits_for(3), 2);
        assert_eq!(bits_for(4), 2);
        assert_eq!(bits_for(5), 3);
        assert_eq!(bits_for(1 << 20), 20);
    }

    #[test]
    fn interleaving_layout() {
        let mut m = BddManager::new();
        let doms = m.new_interleaved_domains(&[16, 16]);
        assert_eq!(doms[0].vars(), &[0, 2, 4, 6]);
        assert_eq!(doms[1].vars(), &[1, 3, 5, 7]);
        assert_eq!(m.num_vars(), 8);
        // A second group continues after the first.
        let more = m.new_interleaved_domains(&[4]);
        assert_eq!(more[0].vars(), &[8, 9]);
    }

    #[test]
    fn value_roundtrip() {
        let mut m = BddManager::new();
        let d = m.new_interleaved_domains(&[100])[0].clone();
        for v in [0u64, 1, 2, 50, 99] {
            let f = m.domain_value(&d, v);
            assert!(m.domain_contains(f, &d, v));
            for w in [0u64, 1, 2, 50, 99] {
                assert_eq!(m.domain_contains(f, &d, w), v == w);
            }
            assert_eq!(m.domain_values(f, &d), vec![v]);
            assert_eq!(m.domain_len(f, &d), 1);
        }
    }

    #[test]
    #[should_panic(expected = "outside domain")]
    fn value_bound_checked() {
        let mut m = BddManager::new();
        let d = m.new_interleaved_domains(&[100])[0].clone();
        let _ = m.domain_value(&d, 100);
    }

    #[test]
    fn union_of_values_enumerates_sorted() {
        let mut m = BddManager::new();
        let d = m.new_interleaved_domains(&[64])[0].clone();
        let vals = [9u64, 3, 63, 0, 32];
        let mut f = Bdd::ZERO;
        for &v in &vals {
            let fv = m.domain_value(&d, v);
            f = m.or(f, fv);
        }
        assert_eq!(m.domain_values(f, &d), vec![0, 3, 9, 32, 63]);
        assert_eq!(m.domain_len(f, &d), 5);
    }

    #[test]
    fn dont_care_compression_enumerates_fully() {
        let mut m = BddManager::new();
        let d = m.new_interleaved_domains(&[8])[0].clone();
        // {0..8} collapses to the constant ONE over 3 bits.
        let mut f = Bdd::ZERO;
        for v in 0..8 {
            let fv = m.domain_value(&d, v);
            f = m.or(f, fv);
        }
        assert!(f.is_one());
        assert_eq!(m.domain_values(f, &d), (0..8).collect::<Vec<_>>());
    }

    #[test]
    fn tuples_and_rename() {
        let mut m = BddManager::new();
        let doms = m.new_interleaved_domains(&[32, 32]);
        let (a, b) = (doms[0].clone(), doms[1].clone());
        // f = (a=5) — rename to b.
        let f = m.domain_value(&a, 5);
        let g = m.rename(f, &a, &b);
        assert_eq!(g, m.domain_value(&b, 5));
        // A two-column relation: {(1,2),(3,4)}; project column b.
        let t1 = m.tuple(&[(&a, 1), (&b, 2)]);
        let t2 = m.tuple(&[(&a, 3), (&b, 4)]);
        let rel = m.or(t1, t2);
        let cube_a = m.domain_cube(&a);
        let proj = m.exists(rel, cube_a);
        assert_eq!(m.domain_values(proj, &b), vec![2, 4]);
    }

    #[test]
    fn relprod_joins_relations() {
        let mut m = BddManager::new();
        let doms = m.new_interleaved_domains(&[16, 16, 16]);
        let (x, y, z) = (doms[0].clone(), doms[1].clone(), doms[2].clone());
        // R1(x,y) = {(1,2),(1,3)}, R2(y,z) = {(2,9),(3,7),(4,0)}
        let mut r1 = Bdd::ZERO;
        for (a, b) in [(1, 2), (1, 3)] {
            let t = m.tuple(&[(&x, a), (&y, b)]);
            r1 = m.or(r1, t);
        }
        let mut r2 = Bdd::ZERO;
        for (b, c) in [(2, 9), (3, 7), (4, 0)] {
            let t = m.tuple(&[(&y, b), (&z, c)]);
            r2 = m.or(r2, t);
        }
        let cube_y = m.domain_cube(&y);
        let joined = m.relprod(r1, r2, cube_y); // {(1,9),(1,7)} over (x,z)
        let cube_x = m.domain_cube(&x);
        let zs = m.exists(joined, cube_x);
        assert_eq!(m.domain_values(zs, &z), vec![7, 9]);
    }

    #[test]
    fn equality_relation() {
        let mut m = BddManager::new();
        let doms = m.new_interleaved_domains(&[8, 8]);
        let (a, b) = (doms[0].clone(), doms[1].clone());
        let eq = m.domain_equals(&a, &b);
        assert_eq!(m.sat_count(eq, &[0, 1, 2, 3, 4, 5]), 8);
        let t_eq = m.tuple(&[(&a, 5), (&b, 5)]);
        let t_ne = m.tuple(&[(&a, 5), (&b, 6)]);
        let i1 = m.and(eq, t_eq);
        let i2 = m.and(eq, t_ne);
        assert_eq!(i1, t_eq);
        assert!(i2.is_zero());
    }
}
