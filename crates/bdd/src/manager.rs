//! The BDD node table and core operations.

use ant_common::fx::FxHashMap;

/// A handle to a BDD node. Handles are only meaningful together with the
/// [`BddManager`] that created them.
///
/// Because nodes are hash-consed, two handles are equal **iff** they denote
/// the same boolean function — set equality is a single integer comparison.
#[derive(Clone, Copy, PartialEq, Eq, Hash, Debug)]
pub struct Bdd(pub(crate) u32);

impl Bdd {
    /// The constant `false` (the empty set).
    pub const ZERO: Bdd = Bdd(0);
    /// The constant `true`.
    pub const ONE: Bdd = Bdd(1);

    /// Returns `true` if this is the constant `false`.
    #[inline]
    pub fn is_zero(self) -> bool {
        self.0 == 0
    }

    /// Returns `true` if this is the constant `true`.
    #[inline]
    pub fn is_one(self) -> bool {
        self.0 == 1
    }

    /// Returns `true` if this is `false` or `true`.
    #[inline]
    pub fn is_terminal(self) -> bool {
        self.0 <= 1
    }
}

/// Sentinel level for the two terminal nodes; compares greater than every
/// real variable.
const TERMINAL_VAR: u32 = u32::MAX;

#[derive(Clone, Copy, Debug)]
struct Node {
    var: u32,
    low: u32,
    high: u32,
}

/// A registered set of variables to quantify over (BuDDy's "varset"/cube).
#[derive(Clone, Copy, PartialEq, Eq, Hash, Debug)]
pub struct CubeId(u32);

/// Operation tags for the shared memo cache.
#[derive(Clone, Copy, PartialEq, Eq, Debug)]
#[repr(u8)]
enum Op {
    Ite = 1,
    Exists = 2,
    Relprod = 3,
}

/// BuDDy-style direct-mapped, lossy operation cache: far faster than an
/// exact hash map, and collisions merely cost a recomputation.
#[derive(Clone, Debug)]
struct OpCache {
    entries: Vec<CacheEntry>,
    mask: usize,
}

#[derive(Clone, Copy, Debug)]
struct CacheEntry {
    a: u32,
    b: u32,
    c: u32,
    op: u8,
    result: u32,
}

const EMPTY_ENTRY: CacheEntry = CacheEntry {
    a: u32::MAX,
    b: u32::MAX,
    c: u32::MAX,
    op: 0,
    result: 0,
};

impl OpCache {
    fn new(log2: u32) -> Self {
        let size = 1usize << log2;
        OpCache {
            entries: vec![EMPTY_ENTRY; size],
            mask: size - 1,
        }
    }

    #[inline]
    fn slot(&self, op: Op, a: u32, b: u32, c: u32) -> usize {
        let mut h = (a as u64)
            .wrapping_mul(0x9E3779B97F4A7C15)
            .wrapping_add((b as u64).rotate_left(21))
            .wrapping_add((c as u64).rotate_left(42))
            .wrapping_add(op as u64);
        h ^= h >> 29;
        h = h.wrapping_mul(0xBF58476D1CE4E5B9);
        (h >> 13) as usize & self.mask
    }

    #[inline]
    fn get(&self, op: Op, a: u32, b: u32, c: u32) -> Option<u32> {
        let e = &self.entries[self.slot(op, a, b, c)];
        (e.op == op as u8 && e.a == a && e.b == b && e.c == c).then_some(e.result)
    }

    #[inline]
    fn put(&mut self, op: Op, a: u32, b: u32, c: u32, result: u32) {
        let slot = self.slot(op, a, b, c);
        self.entries[slot] = CacheEntry {
            a,
            b,
            c,
            op: op as u8,
            result,
        };
    }

    fn clear(&mut self) {
        self.entries.fill(EMPTY_ENTRY);
    }

    /// Double the table (lossy — old entries are dropped) up to a cap.
    fn maybe_grow(&mut self, nodes: usize) {
        let len = self.entries.len();
        if nodes > len && len < (1 << 23) {
            *self = OpCache::new((len.trailing_zeros()) + 1);
        }
    }

    fn heap_bytes(&self) -> usize {
        self.entries.len() * std::mem::size_of::<CacheEntry>()
    }
}

#[derive(Clone, Debug)]
struct Cube {
    /// Sorted variable indices.
    vars: Vec<u32>,
    /// Largest variable in the cube (`0` if empty).
    max: u32,
}

impl Cube {
    #[inline]
    fn contains(&self, var: u32) -> bool {
        self.vars.binary_search(&var).is_ok()
    }
}

/// A shared BDD node table with memoized operations.
///
/// The manager owns every node; all operations hash-cons through a unique
/// table so that each boolean function has exactly one handle. There is no
/// garbage collection: the analyses in this workspace run to a fixpoint and
/// then drop the whole manager, which mirrors how the paper pre-allocates a
/// BuDDy pool for the duration of a run.
///
/// # Example
///
/// ```
/// use ant_bdd::BddManager;
///
/// let mut m = BddManager::new();
/// m.ensure_vars(2);
/// let x0 = m.var(0);
/// let x1 = m.var(1);
/// let f = m.or(x0, x1);
/// let g = m.not(f);
/// let h = m.and(g, x0);
/// assert!(h.is_zero()); // ¬(x0 ∨ x1) ∧ x0 = false
/// ```
#[derive(Clone, Debug)]
pub struct BddManager {
    nodes: Vec<Node>,
    unique: FxHashMap<(u32, u32, u32), u32>,
    cache: OpCache,
    cubes: Vec<Cube>,
    num_vars: u32,
    next_domain_id: u32,
}

impl Default for BddManager {
    fn default() -> Self {
        Self::new()
    }
}

impl BddManager {
    /// Creates a manager with no variables.
    pub fn new() -> Self {
        Self::with_capacity(1 << 12)
    }

    /// Creates a manager with a pre-sized node pool, mirroring BuDDy's
    /// up-front pool allocation.
    pub fn with_capacity(nodes: usize) -> Self {
        let mut m = BddManager {
            nodes: Vec::with_capacity(nodes.max(2)),
            unique: FxHashMap::default(),
            cache: OpCache::new(16),
            cubes: Vec::new(),
            num_vars: 0,
            next_domain_id: 0,
        };
        // Slot 0 = false, slot 1 = true.
        m.nodes.push(Node {
            var: TERMINAL_VAR,
            low: 0,
            high: 0,
        });
        m.nodes.push(Node {
            var: TERMINAL_VAR,
            low: 1,
            high: 1,
        });
        m
    }

    /// Number of boolean variables declared so far.
    pub fn num_vars(&self) -> u32 {
        self.num_vars
    }

    /// Declares variables so that indices `0..n` are valid.
    pub fn ensure_vars(&mut self, n: u32) {
        self.num_vars = self.num_vars.max(n);
    }

    pub(crate) fn fresh_domain_id(&mut self) -> u32 {
        let id = self.next_domain_id;
        self.next_domain_id += 1;
        id
    }

    /// Total nodes allocated (including the two terminals).
    pub fn node_count(&self) -> usize {
        self.nodes.len()
    }

    /// Heap bytes owned by the node table and operation caches.
    pub fn heap_bytes(&self) -> usize {
        let node = std::mem::size_of::<Node>();
        // Unique table: key + value + ~1 byte control per slot (hashbrown),
        // over-approximated by capacity.
        self.nodes.capacity() * node
            + self.unique.capacity() * (12 + 4 + 8)
            + self.cache.heap_bytes()
    }

    /// Drops the memoization cache (the unique table is kept — dropping it
    /// would break canonicity).
    pub fn clear_caches(&mut self) {
        self.cache.clear();
    }

    #[inline]
    fn node(&self, f: Bdd) -> Node {
        self.nodes[f.0 as usize]
    }

    /// Variable index at the root of `f`; terminals report `u32::MAX`.
    #[inline]
    pub fn root_var(&self, f: Bdd) -> u32 {
        self.node(f).var
    }

    /// Low (else) child of a non-terminal node.
    ///
    /// # Panics
    ///
    /// Panics if `f` is a terminal.
    pub fn low(&self, f: Bdd) -> Bdd {
        assert!(!f.is_terminal(), "terminal node has no children");
        Bdd(self.node(f).low)
    }

    /// High (then) child of a non-terminal node.
    ///
    /// # Panics
    ///
    /// Panics if `f` is a terminal.
    pub fn high(&self, f: Bdd) -> Bdd {
        assert!(!f.is_terminal(), "terminal node has no children");
        Bdd(self.node(f).high)
    }

    /// Hash-consing constructor: returns the canonical node `(var, low, high)`.
    fn mk(&mut self, var: u32, low: Bdd, high: Bdd) -> Bdd {
        if low == high {
            return low;
        }
        debug_assert!(var < self.node(low).var && var < self.node(high).var);
        let key = (var, low.0, high.0);
        if let Some(&id) = self.unique.get(&key) {
            return Bdd(id);
        }
        let id = u32::try_from(self.nodes.len()).expect("BDD node table overflow");
        self.nodes.push(Node {
            var,
            low: low.0,
            high: high.0,
        });
        self.unique.insert(key, id);
        self.cache.maybe_grow(self.nodes.len());
        Bdd(id)
    }

    /// The function of a single variable: `x_var`.
    ///
    /// # Panics
    ///
    /// Panics if `var` has not been declared via [`ensure_vars`](Self::ensure_vars)
    /// or domain creation.
    pub fn var(&mut self, var: u32) -> Bdd {
        assert!(var < self.num_vars, "undeclared BDD variable {var}");
        self.mk(var, Bdd::ZERO, Bdd::ONE)
    }

    /// The negated single-variable function `¬x_var`.
    ///
    /// # Panics
    ///
    /// Panics if `var` has not been declared.
    pub fn nvar(&mut self, var: u32) -> Bdd {
        assert!(var < self.num_vars, "undeclared BDD variable {var}");
        self.mk(var, Bdd::ONE, Bdd::ZERO)
    }

    /// Cofactors of `f` with respect to `var` (which must be ≤ the root
    /// variable of `f` in the order).
    #[inline]
    fn cofactors(&self, f: Bdd, var: u32) -> (Bdd, Bdd) {
        let n = self.node(f);
        if n.var == var {
            (Bdd(n.low), Bdd(n.high))
        } else {
            (f, f)
        }
    }

    /// If-then-else: `f·g ∨ ¬f·h`. All binary operations reduce to this.
    pub fn ite(&mut self, f: Bdd, g: Bdd, h: Bdd) -> Bdd {
        // Terminal shortcuts.
        if f.is_one() {
            return g;
        }
        if f.is_zero() {
            return h;
        }
        if g == h {
            return g;
        }
        if g.is_one() && h.is_zero() {
            return f;
        }
        if let Some(r) = self.cache.get(Op::Ite, f.0, g.0, h.0) {
            return Bdd(r);
        }
        let top = self.node(f).var.min(self.node(g).var).min(self.node(h).var);
        let (f0, f1) = self.cofactors(f, top);
        let (g0, g1) = self.cofactors(g, top);
        let (h0, h1) = self.cofactors(h, top);
        let r0 = self.ite(f0, g0, h0);
        let r1 = self.ite(f1, g1, h1);
        let r = self.mk(top, r0, r1);
        self.cache.put(Op::Ite, f.0, g.0, h.0, r.0);
        r
    }

    /// Conjunction `f ∧ g` (set intersection).
    pub fn and(&mut self, f: Bdd, g: Bdd) -> Bdd {
        self.ite(f, g, Bdd::ZERO)
    }

    /// Disjunction `f ∨ g` (set union).
    pub fn or(&mut self, f: Bdd, g: Bdd) -> Bdd {
        self.ite(f, Bdd::ONE, g)
    }

    /// Negation `¬f` (set complement).
    pub fn not(&mut self, f: Bdd) -> Bdd {
        self.ite(f, Bdd::ZERO, Bdd::ONE)
    }

    /// Difference `f ∧ ¬g` (set difference).
    pub fn diff(&mut self, f: Bdd, g: Bdd) -> Bdd {
        self.ite(g, Bdd::ZERO, f)
    }

    /// Exclusive or.
    pub fn xor(&mut self, f: Bdd, g: Bdd) -> Bdd {
        let ng = self.not(g);
        self.ite(f, ng, g)
    }

    /// Registers a set of variables for quantification. Cubes are interned so
    /// quantification results can be memoized per `(node, cube)` pair.
    pub fn register_cube(&mut self, mut vars: Vec<u32>) -> CubeId {
        vars.sort_unstable();
        vars.dedup();
        let max = vars.last().copied().unwrap_or(0);
        // Reuse an existing identical cube so the caches stay effective.
        for (i, c) in self.cubes.iter().enumerate() {
            if c.vars == vars {
                return CubeId(u32::try_from(i).expect("cube id overflow"));
            }
        }
        let id = u32::try_from(self.cubes.len()).expect("cube id overflow");
        self.cubes.push(Cube { vars, max });
        CubeId(id)
    }

    /// Existential quantification `∃ cube. f`.
    pub fn exists(&mut self, f: Bdd, cube: CubeId) -> Bdd {
        if f.is_terminal() {
            return f;
        }
        let fv = self.node(f).var;
        if fv > self.cubes[cube.0 as usize].max {
            return f;
        }
        if let Some(r) = self.cache.get(Op::Exists, f.0, cube.0, 0) {
            return Bdd(r);
        }
        let n = self.node(f);
        let r0 = self.exists(Bdd(n.low), cube);
        let r1 = self.exists(Bdd(n.high), cube);
        let r = if self.cubes[cube.0 as usize].contains(n.var) {
            self.or(r0, r1)
        } else {
            self.mk(n.var, r0, r1)
        };
        self.cache.put(Op::Exists, f.0, cube.0, 0, r.0);
        r
    }

    /// Fused relational product `∃ cube. f ∧ g` — the workhorse of the BLQ
    /// solver (one call per propagation step instead of materializing the
    /// full conjunction).
    pub fn relprod(&mut self, f: Bdd, g: Bdd, cube: CubeId) -> Bdd {
        if f.is_zero() || g.is_zero() {
            return Bdd::ZERO;
        }
        if f.is_one() {
            return self.exists(g, cube);
        }
        if g.is_one() {
            return self.exists(f, cube);
        }
        let cmax = self.cubes[cube.0 as usize].max;
        if self.node(f).var > cmax && self.node(g).var > cmax {
            return self.and(f, g);
        }
        // ∧ is commutative: canonicalize the key.
        let (ka, kb) = if f.0 <= g.0 { (f.0, g.0) } else { (g.0, f.0) };
        if let Some(r) = self.cache.get(Op::Relprod, ka, kb, cube.0) {
            return Bdd(r);
        }
        let top = self.node(f).var.min(self.node(g).var);
        let (f0, f1) = self.cofactors(f, top);
        let (g0, g1) = self.cofactors(g, top);
        let r0 = self.relprod(f0, g0, cube);
        let r1 = self.relprod(f1, g1, cube);
        let r = if self.cubes[cube.0 as usize].contains(top) {
            self.or(r0, r1)
        } else {
            self.mk(top, r0, r1)
        };
        self.cache.put(Op::Relprod, ka, kb, cube.0, r.0);
        r
    }

    /// Number of satisfying assignments of `f` over exactly the variables in
    /// `vars` (which must be a superset of `f`'s support).
    ///
    /// # Panics
    ///
    /// Panics if `f` depends on a variable outside `vars`.
    pub fn sat_count(&self, f: Bdd, vars: &[u32]) -> u64 {
        let mut sorted: Vec<u32> = vars.to_vec();
        sorted.sort_unstable();
        sorted.dedup();
        let mut memo: FxHashMap<(u32, usize), u64> = FxHashMap::default();
        self.sat_count_rec(f, 0, &sorted, &mut memo)
    }

    fn sat_count_rec(
        &self,
        f: Bdd,
        pos: usize,
        vars: &[u32],
        memo: &mut FxHashMap<(u32, usize), u64>,
    ) -> u64 {
        if pos == vars.len() {
            assert!(
                f.is_terminal(),
                "sat_count: function depends on variable {} outside the given set",
                self.node(f).var
            );
            return u64::from(f.is_one());
        }
        if f.is_zero() {
            return 0;
        }
        if let Some(&r) = memo.get(&(f.0, pos)) {
            return r;
        }
        let n = self.node(f);
        let r = if n.var == vars[pos] {
            self.sat_count_rec(Bdd(n.low), pos + 1, vars, memo)
                + self.sat_count_rec(Bdd(n.high), pos + 1, vars, memo)
        } else {
            assert!(
                n.var > vars[pos] || f.is_one(),
                "sat_count: function depends on variable {} outside the given set",
                n.var
            );
            2 * self.sat_count_rec(f, pos + 1, vars, memo)
        };
        memo.insert((f.0, pos), r);
        r
    }

    /// Number of distinct nodes reachable from `f` (BuDDy's `bdd_nodecount`).
    pub fn size(&self, f: Bdd) -> usize {
        let mut seen = ant_common::fx::FxHashSet::default();
        let mut stack = vec![f.0];
        while let Some(i) = stack.pop() {
            if i <= 1 || !seen.insert(i) {
                continue;
            }
            let n = self.nodes[i as usize];
            stack.push(n.low);
            stack.push(n.high);
        }
        seen.len() + 2
    }

    /// Evaluates `f` under a total assignment given as a predicate.
    pub fn eval(&self, f: Bdd, assignment: impl Fn(u32) -> bool) -> bool {
        let mut cur = f;
        while !cur.is_terminal() {
            let n = self.node(cur);
            cur = if assignment(n.var) {
                Bdd(n.high)
            } else {
                Bdd(n.low)
            };
        }
        cur.is_one()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn mgr(nvars: u32) -> BddManager {
        let mut m = BddManager::new();
        m.ensure_vars(nvars);
        m
    }

    #[test]
    fn terminals() {
        let m = BddManager::new();
        assert!(Bdd::ZERO.is_zero());
        assert!(Bdd::ONE.is_one());
        assert_eq!(m.node_count(), 2);
    }

    #[test]
    fn hash_consing_canonicalizes() {
        let mut m = mgr(2);
        let a1 = m.var(0);
        let a2 = m.var(0);
        assert_eq!(a1, a2);
        let x = m.var(0);
        let y = m.var(1);
        let f1 = m.and(x, y);
        let f2 = m.and(y, x);
        assert_eq!(f1, f2, "∧ must be canonical regardless of argument order");
    }

    #[test]
    fn boolean_algebra_identities() {
        let mut m = mgr(3);
        let x = m.var(0);
        let y = m.var(1);
        let z = m.var(2);
        // Involution.
        let nx = m.not(x);
        assert_eq!(m.not(nx), x);
        // De Morgan.
        let and_xy = m.and(x, y);
        let lhs = m.not(and_xy);
        let ny = m.not(y);
        let rhs = m.or(nx, ny);
        assert_eq!(lhs, rhs);
        // Distributivity.
        let yz = m.or(y, z);
        let l = m.and(x, yz);
        let xy = m.and(x, y);
        let xz = m.and(x, z);
        let r = m.or(xy, xz);
        assert_eq!(l, r);
        // Xor.
        let x_xor_x = m.xor(x, x);
        assert!(x_xor_x.is_zero());
        let x_xor_nx = m.xor(x, nx);
        assert!(x_xor_nx.is_one());
        // Difference.
        let d = m.diff(x, x);
        assert!(d.is_zero());
    }

    #[test]
    fn ite_matches_truth_table() {
        let mut m = mgr(3);
        let f = m.var(0);
        let g = m.var(1);
        let h = m.var(2);
        let r = m.ite(f, g, h);
        for bits in 0..8u32 {
            let assign = |v: u32| bits & (1 << v) != 0;
            let expect = if assign(0) { assign(1) } else { assign(2) };
            assert_eq!(m.eval(r, assign), expect, "bits={bits:03b}");
        }
    }

    #[test]
    fn exists_quantifies() {
        let mut m = mgr(2);
        let x = m.var(0);
        let y = m.var(1);
        let f = m.and(x, y);
        let cube = m.register_cube(vec![0]);
        // ∃x. x∧y = y
        assert_eq!(m.exists(f, cube), y);
        // ∃x. x = true
        assert!(m.exists(x, cube).is_one());
        // ∃x. y = y (x not in support)
        assert_eq!(m.exists(y, cube), y);
    }

    #[test]
    fn relprod_equals_and_then_exists() {
        let mut m = mgr(6);
        // Build a couple of moderately interesting functions.
        let a = m.var(0);
        let b = m.var(2);
        let c = m.var(4);
        let d = m.var(1);
        let ab = m.or(a, b);
        let f = m.xor(ab, d);
        let cd = m.and(c, d);
        let g = m.or(cd, a);
        let cube = m.register_cube(vec![0, 2]);
        let fused = m.relprod(f, g, cube);
        let anded = m.and(f, g);
        let split = m.exists(anded, cube);
        assert_eq!(fused, split);
    }

    #[test]
    fn sat_count_counts() {
        let mut m = mgr(3);
        let x = m.var(0);
        let y = m.var(1);
        let f = m.or(x, y);
        assert_eq!(m.sat_count(f, &[0, 1]), 3);
        assert_eq!(m.sat_count(f, &[0, 1, 2]), 6);
        assert_eq!(m.sat_count(Bdd::ONE, &[0, 1, 2]), 8);
        assert_eq!(m.sat_count(Bdd::ZERO, &[0]), 0);
    }

    #[test]
    #[should_panic(expected = "outside the given set")]
    fn sat_count_rejects_escaping_support() {
        let mut m = mgr(2);
        let f = m.var(1);
        let _ = m.sat_count(f, &[0]);
    }

    #[test]
    fn size_counts_nodes() {
        let mut m = mgr(2);
        let x = m.var(0);
        let y = m.var(1);
        let f = m.and(x, y);
        assert_eq!(m.size(f), 4); // 2 internal + 2 terminals
        assert_eq!(m.size(Bdd::ONE), 2);
    }

    #[test]
    fn cube_interning() {
        let mut m = mgr(4);
        let c1 = m.register_cube(vec![3, 1]);
        let c2 = m.register_cube(vec![1, 3, 3]);
        assert_eq!(c1, c2);
        let c3 = m.register_cube(vec![1]);
        assert_ne!(c1, c3);
    }

    #[test]
    fn clear_caches_preserves_semantics() {
        let mut m = mgr(2);
        let x = m.var(0);
        let y = m.var(1);
        let f1 = m.and(x, y);
        m.clear_caches();
        let f2 = m.and(x, y);
        assert_eq!(f1, f2);
    }

    #[test]
    #[should_panic(expected = "undeclared")]
    fn var_requires_declaration() {
        let mut m = BddManager::new();
        let _ = m.var(0);
    }
}
