//! Per-variable BDD points-to sets (the representation of Tables 5 and 6).
//!
//! Unlike BLQ — which stores the whole points-to relation in a single BDD —
//! this gives each variable its own BDD over one location domain, exactly
//! the "simple modification" described in §5.1 of the paper.

use crate::{Bdd, BddManager, Domain};

/// A set of `u64` values represented as a BDD over a [`Domain`].
///
/// Because the manager hash-conses nodes, set equality is one integer
/// comparison — which is why §5.4 notes that LCD's equal-set test is
/// particularly cheap under this representation.
///
/// # Example
///
/// ```
/// use ant_bdd::{BddManager, BddSet};
///
/// let mut m = BddManager::new();
/// let d = m.new_interleaved_domains(&[128])[0].clone();
/// let mut a = BddSet::empty();
/// a.insert(&mut m, &d, 7);
/// let mut b = BddSet::empty();
/// b.insert(&mut m, &d, 7);
/// assert_eq!(a, b); // canonical: O(1) equality
/// assert!(!a.union_with(&mut m, &b)); // no change
/// ```
#[derive(Clone, Copy, PartialEq, Eq, Hash, Debug)]
pub struct BddSet {
    bdd: Bdd,
}

impl Default for BddSet {
    fn default() -> Self {
        Self::empty()
    }
}

impl BddSet {
    /// The empty set.
    pub const fn empty() -> Self {
        BddSet { bdd: Bdd::ZERO }
    }

    /// Wraps an existing BDD (which must be a function over `d` only).
    pub const fn from_bdd(bdd: Bdd) -> Self {
        BddSet { bdd }
    }

    /// The underlying BDD.
    pub const fn as_bdd(self) -> Bdd {
        self.bdd
    }

    /// Returns `true` if the set is empty.
    pub fn is_empty(self) -> bool {
        self.bdd.is_zero()
    }

    /// Inserts `value`; returns `true` if it was not already present.
    pub fn insert(&mut self, m: &mut BddManager, d: &Domain, value: u64) -> bool {
        let v = m.domain_value(d, value);
        let new = m.or(self.bdd, v);
        let changed = new != self.bdd;
        self.bdd = new;
        changed
    }

    /// Returns `true` if `value` is in the set.
    pub fn contains(self, m: &BddManager, d: &Domain, value: u64) -> bool {
        !self.bdd.is_zero() && m.domain_contains(self.bdd, d, value)
    }

    /// In-place union; returns `true` if `self` changed.
    pub fn union_with(&mut self, m: &mut BddManager, other: &BddSet) -> bool {
        let new = m.or(self.bdd, other.bdd);
        let changed = new != self.bdd;
        self.bdd = new;
        changed
    }

    /// Number of values in the set.
    pub fn len(self, m: &BddManager, d: &Domain) -> u64 {
        if self.bdd.is_zero() {
            0
        } else {
            m.domain_len(self.bdd, d)
        }
    }

    /// All values, ascending (BuDDy's `bdd_allsat`).
    pub fn values(self, m: &BddManager, d: &Domain) -> Vec<u64> {
        if self.bdd.is_zero() {
            Vec::new()
        } else {
            m.domain_values(self.bdd, d)
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn insert_and_query() {
        let mut m = BddManager::new();
        let d = m.new_interleaved_domains(&[1000])[0].clone();
        let mut s = BddSet::empty();
        assert!(s.is_empty());
        assert!(s.insert(&mut m, &d, 1));
        assert!(!s.insert(&mut m, &d, 1));
        assert!(s.insert(&mut m, &d, 999));
        assert!(s.contains(&m, &d, 1));
        assert!(!s.contains(&m, &d, 2));
        assert_eq!(s.len(&m, &d), 2);
        assert_eq!(s.values(&m, &d), vec![1, 999]);
    }

    #[test]
    fn union_reports_change() {
        let mut m = BddManager::new();
        let d = m.new_interleaved_domains(&[64])[0].clone();
        let mut a = BddSet::empty();
        a.insert(&mut m, &d, 1);
        a.insert(&mut m, &d, 2);
        let mut b = BddSet::empty();
        b.insert(&mut m, &d, 2);
        assert!(!a.union_with(&mut m, &b));
        b.insert(&mut m, &d, 3);
        assert!(a.union_with(&mut m, &b));
        assert_eq!(a.values(&m, &d), vec![1, 2, 3]);
    }

    #[test]
    fn canonical_equality() {
        let mut m = BddManager::new();
        let d = m.new_interleaved_domains(&[64])[0].clone();
        let mut a = BddSet::empty();
        let mut b = BddSet::empty();
        for v in [5u64, 10, 15] {
            a.insert(&mut m, &d, v);
        }
        for v in [15u64, 5, 10] {
            b.insert(&mut m, &d, v);
        }
        assert_eq!(a, b);
    }

    #[test]
    fn model_check_against_btreeset() {
        use std::collections::BTreeSet;
        let mut m = BddManager::new();
        let d = m.new_interleaved_domains(&[512])[0].clone();
        let mut s = BddSet::empty();
        let mut model = BTreeSet::new();
        let mut x: u64 = 99;
        for _ in 0..600 {
            x = x
                .wrapping_mul(6364136223846793005)
                .wrapping_add(1442695040888963407);
            let v = (x >> 33) % 512;
            assert_eq!(s.insert(&mut m, &d, v), model.insert(v));
        }
        assert_eq!(s.values(&m, &d), model.iter().copied().collect::<Vec<_>>());
        assert_eq!(s.len(&m, &d), model.len() as u64);
    }
}
