//! Stress and robustness tests for the BDD manager: cache growth, many
//! domains, wide value spaces.

use ant_bdd::{Bdd, BddManager, BddSet};

#[test]
fn cache_grows_with_node_count() {
    let mut m = BddManager::new();
    let d = m.new_interleaved_domains(&[1 << 20])[0].clone();
    let before = m.heap_bytes();
    let mut s = BddSet::empty();
    // Enough inserts to outgrow the initial 2^16-entry cache.
    let mut x: u64 = 1;
    for _ in 0..80_000 {
        x = x
            .wrapping_mul(6364136223846793005)
            .wrapping_add(1442695040888963407);
        s.insert(&mut m, &d, x % (1 << 20));
    }
    assert!(m.node_count() > 1 << 16);
    assert!(m.heap_bytes() > before);
    // The set still answers correctly after growth.
    assert!(s.len(&m, &d) > 70_000);
}

#[test]
fn clear_caches_mid_computation_is_safe() {
    let mut m = BddManager::new();
    let doms = m.new_interleaved_domains(&[256, 256]);
    let (a, b) = (doms[0].clone(), doms[1].clone());
    let mut rel = Bdd::ZERO;
    for i in 0..128 {
        let t = m.tuple(&[(&a, i), (&b, (i * 7) % 256)]);
        rel = m.or(rel, t);
    }
    let cube = m.domain_cube(&a);
    let before = m.exists(rel, cube);
    m.clear_caches();
    let after = m.exists(rel, cube);
    assert_eq!(before, after, "canonicity survives cache clearing");
}

#[test]
fn many_domain_groups_coexist() {
    let mut m = BddManager::new();
    let mut doms = Vec::new();
    for _ in 0..6 {
        doms.extend(m.new_interleaved_domains(&[64, 64]));
    }
    // Values in distinct groups occupy disjoint variables: conjunction of
    // one value per domain is satisfiable and enumerable per-domain.
    let mut f = Bdd::ONE;
    for (i, d) in doms.iter().enumerate() {
        let v = m.domain_value(d, (i as u64 * 13) % 64);
        f = m.and(f, v);
    }
    assert!(!f.is_zero());
    for (i, d) in doms.iter().enumerate() {
        // Project to this domain alone.
        let others: Vec<u32> = doms
            .iter()
            .enumerate()
            .filter(|&(j, _)| j != i)
            .flat_map(|(_, o)| o.vars().iter().copied())
            .collect();
        let cube = m.register_cube(others);
        let proj = m.exists(f, cube);
        assert_eq!(m.domain_values(proj, d), vec![(i as u64 * 13) % 64]);
    }
}

#[test]
fn single_value_domain() {
    let mut m = BddManager::new();
    let d = m.new_interleaved_domains(&[1])[0].clone();
    let v = m.domain_value(&d, 0);
    assert!(m.domain_contains(v, &d, 0));
    assert_eq!(m.domain_values(v, &d), vec![0]);
}

#[test]
fn full_domain_is_constant_true() {
    let mut m = BddManager::new();
    let d = m.new_interleaved_domains(&[16])[0].clone();
    let mut f = Bdd::ZERO;
    for v in 0..16 {
        let fv = m.domain_value(&d, v);
        f = m.or(f, fv);
    }
    assert!(f.is_one());
    assert_eq!(m.domain_len(f, &d), 16);
}

#[test]
fn rename_is_involutive() {
    let mut m = BddManager::new();
    let doms = m.new_interleaved_domains(&[512, 512]);
    let (a, b) = (doms[0].clone(), doms[1].clone());
    let mut f = Bdd::ZERO;
    for v in [3u64, 99, 511, 200] {
        let fv = m.domain_value(&a, v);
        f = m.or(f, fv);
    }
    let g = m.rename(f, &a, &b);
    let back = m.rename(g, &b, &a);
    assert_eq!(back, f);
}
