//! Property-based testing of the BDD package: boolean algebra against an
//! exhaustive truth-table oracle, and set operations against `BTreeSet`.

use ant_bdd::{Bdd, BddManager, BddSet};
use proptest::prelude::*;
use std::collections::BTreeSet;

/// A random boolean expression over `NVARS` variables.
#[derive(Clone, Debug)]
enum Expr {
    Var(u32),
    Not(Box<Expr>),
    And(Box<Expr>, Box<Expr>),
    Or(Box<Expr>, Box<Expr>),
    Xor(Box<Expr>, Box<Expr>),
}

const NVARS: u32 = 6;

fn exprs() -> impl Strategy<Value = Expr> {
    let leaf = (0..NVARS).prop_map(Expr::Var);
    leaf.prop_recursive(5, 64, 2, |inner| {
        prop_oneof![
            inner.clone().prop_map(|e| Expr::Not(Box::new(e))),
            (inner.clone(), inner.clone()).prop_map(|(a, b)| Expr::And(Box::new(a), Box::new(b))),
            (inner.clone(), inner.clone()).prop_map(|(a, b)| Expr::Or(Box::new(a), Box::new(b))),
            (inner.clone(), inner).prop_map(|(a, b)| Expr::Xor(Box::new(a), Box::new(b))),
        ]
    })
}

fn build(m: &mut BddManager, e: &Expr) -> Bdd {
    match e {
        Expr::Var(v) => m.var(*v),
        Expr::Not(a) => {
            let x = build(m, a);
            m.not(x)
        }
        Expr::And(a, b) => {
            let (x, y) = (build(m, a), build(m, b));
            m.and(x, y)
        }
        Expr::Or(a, b) => {
            let (x, y) = (build(m, a), build(m, b));
            m.or(x, y)
        }
        Expr::Xor(a, b) => {
            let (x, y) = (build(m, a), build(m, b));
            m.xor(x, y)
        }
    }
}

fn eval(e: &Expr, bits: u32) -> bool {
    match e {
        Expr::Var(v) => bits & (1 << v) != 0,
        Expr::Not(a) => !eval(a, bits),
        Expr::And(a, b) => eval(a, bits) && eval(b, bits),
        Expr::Or(a, b) => eval(a, bits) || eval(b, bits),
        Expr::Xor(a, b) => eval(a, bits) ^ eval(b, bits),
    }
}

proptest! {
    #[test]
    fn bdd_matches_truth_table(e in exprs()) {
        let mut m = BddManager::new();
        m.ensure_vars(NVARS);
        let f = build(&mut m, &e);
        for bits in 0..(1u32 << NVARS) {
            prop_assert_eq!(m.eval(f, |v| bits & (1 << v) != 0), eval(&e, bits));
        }
    }

    #[test]
    fn canonicity_equal_functions_equal_handles(e1 in exprs(), e2 in exprs()) {
        let mut m = BddManager::new();
        m.ensure_vars(NVARS);
        let f1 = build(&mut m, &e1);
        let f2 = build(&mut m, &e2);
        let same = (0..(1u32 << NVARS)).all(|bits| eval(&e1, bits) == eval(&e2, bits));
        prop_assert_eq!(f1 == f2, same);
    }

    #[test]
    fn exists_matches_oracle(e in exprs(), qvar in 0..NVARS) {
        let mut m = BddManager::new();
        m.ensure_vars(NVARS);
        let f = build(&mut m, &e);
        let cube = m.register_cube(vec![qvar]);
        let q = m.exists(f, cube);
        for bits in 0..(1u32 << NVARS) {
            let expect = eval(&e, bits | (1 << qvar)) || eval(&e, bits & !(1 << qvar));
            prop_assert_eq!(m.eval(q, |v| bits & (1 << v) != 0), expect);
        }
    }

    #[test]
    fn relprod_is_and_then_exists(e1 in exprs(), e2 in exprs(), q1 in 0..NVARS, q2 in 0..NVARS) {
        let mut m = BddManager::new();
        m.ensure_vars(NVARS);
        let f = build(&mut m, &e1);
        let g = build(&mut m, &e2);
        let cube = m.register_cube(vec![q1, q2]);
        let fused = m.relprod(f, g, cube);
        let anded = m.and(f, g);
        let split = m.exists(anded, cube);
        prop_assert_eq!(fused, split);
    }

    #[test]
    fn set_ops_match_btreeset(xs in prop::collection::vec(0u64..500, 0..80),
                              ys in prop::collection::vec(0u64..500, 0..80)) {
        let mut m = BddManager::new();
        let d = m.new_interleaved_domains(&[512])[0].clone();
        let mut a = BddSet::empty();
        let mut ma = BTreeSet::new();
        for &x in &xs {
            prop_assert_eq!(a.insert(&mut m, &d, x), ma.insert(x));
        }
        let mut b = BddSet::empty();
        let mut mb = BTreeSet::new();
        for &y in &ys {
            b.insert(&mut m, &d, y);
            mb.insert(y);
        }
        prop_assert_eq!(a.values(&m, &d), ma.iter().copied().collect::<Vec<_>>());
        prop_assert_eq!(a.len(&m, &d), ma.len() as u64);
        let mut u = a;
        let changed = u.union_with(&mut m, &b);
        let mu: BTreeSet<u64> = ma.union(&mb).copied().collect();
        prop_assert_eq!(changed, mu != ma);
        prop_assert_eq!(u.values(&m, &d), mu.into_iter().collect::<Vec<_>>());
        for probe in [0u64, 17, 499] {
            prop_assert_eq!(b.contains(&m, &d, probe), mb.contains(&probe));
        }
    }
}
