//! `ant` — the command-line front door to the pointer analysis.
//!
//! ```text
//! ant compile prog.c -o prog.consts        # mini-C → constraint file
//! ant solve prog.c --algorithm LCD+HCD     # solve and dump points-to sets
//! ant solve prog.consts --stats            # constraint files work too
//! ant query prog.c --pointer p             # one variable's set
//! ant query prog.c --alias p q             # may-alias question
//! ant explain prog.c p x                   # why does p point to x?
//! ant explain-edge prog.c a b              # why is there an edge a → b?
//! ant gen wine --scale 0.05 -o wine.consts # synthetic workload to a file
//! ant compare prog.c                       # run every algorithm, verify agreement
//! ant serve prog.consts                    # JSONL query session on stdin/stdout
//! ```
//!
//! Failures exit with the [`AntErrorKind`](ant_common::AntErrorKind)'s
//! code (usage 2, parse 3, pipeline 4, solver 5, query 6, io 7), so
//! scripts can branch without parsing stderr.

use ant_common::AntError;
use std::process::ExitCode;

mod commands;
mod opts;

fn main() -> ExitCode {
    let args: Vec<String> = std::env::args().skip(1).collect();
    let Some((cmd, rest)) = args.split_first() else {
        eprintln!("{}", commands::usage());
        return ExitCode::from(ant_common::AntErrorKind::Usage.exit_code());
    };
    let result = match cmd.as_str() {
        "compile" => commands::compile(rest),
        "solve" => commands::solve(rest),
        "query" => commands::query(rest),
        "explain" => commands::explain(rest),
        "explain-edge" => commands::explain_edge(rest),
        "gen" => commands::gen(rest),
        "compare" => commands::compare(rest),
        "serve" => commands::serve(rest),
        "help" | "--help" | "-h" => {
            println!("{}", commands::usage());
            Ok(())
        }
        other => Err(AntError::usage(format!(
            "unknown command `{other}`\n\n{}",
            commands::usage()
        ))),
    };
    match result {
        Ok(()) => ExitCode::SUCCESS,
        Err(e) => {
            eprintln!("error: {e}");
            // The source chain, one frame per line, mirrors what the serve
            // protocol reports in its error envelopes.
            let mut source = std::error::Error::source(&e);
            while let Some(s) = source {
                eprintln!("  caused by: {s}");
                source = s.source();
            }
            ExitCode::from(e.kind().exit_code())
        }
    }
}
