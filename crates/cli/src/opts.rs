//! Tiny hand-rolled option parsing (no external dependencies).
//!
//! Every flag the CLI accepts lives in one table, [`FLAGS`]; parsing
//! consults it for arity and unknown-flag rejection, and the `--help`
//! output is generated from the same rows, so the two can never drift.

use ant_common::AntError;

/// One row of the flag table.
pub struct FlagSpec {
    /// The flag as typed, e.g. `--algorithm`.
    pub name: &'static str,
    /// The value's metavariable for valued flags; `None` for booleans.
    pub value: Option<&'static str>,
    /// One-line description shown by `--help`.
    pub help: &'static str,
}

/// The single source of truth for the CLI's flags.
pub const FLAGS: &[FlagSpec] = &[
    FlagSpec {
        name: "-o",
        value: Some("FILE"),
        help: "write output to FILE instead of stdout",
    },
    FlagSpec {
        name: "--algorithm",
        value: Some("NAME"),
        help: "solver algorithm (default LCD+HCD)",
    },
    FlagSpec {
        name: "--pts",
        value: Some("REPR"),
        help: "points-to representation: bitmap|shared|bdd",
    },
    FlagSpec {
        name: "--worklist",
        value: Some("KIND"),
        help: "worklist strategy: fifo|lifo|lrf|divided-lrf",
    },
    FlagSpec {
        name: "--prop",
        value: Some("MODE"),
        help: "propagation mode: full|diff (diff pushes only pts - sent; default full)",
    },
    FlagSpec {
        name: "--threads",
        value: Some("N"),
        help: "solver threads; N >= 2 runs the BSP engine (default ANT_THREADS or 1)",
    },
    FlagSpec {
        name: "--passes",
        value: Some("LIST"),
        help: "offline passes, comma-separated: normalize,ovs,hcd or none (default normalize,ovs)",
    },
    FlagSpec {
        name: "--base",
        value: Some("FILE"),
        help: "solve: base program for incremental solving (use with --add)",
    },
    FlagSpec {
        name: "--add",
        value: Some("FILE"),
        help: "solve: constraint delta appended to --base; repeatable, resumes when possible",
    },
    FlagSpec {
        name: "--no-ovs",
        value: None,
        help: "skip all offline preprocessing (alias for --passes none)",
    },
    FlagSpec {
        name: "--record",
        value: None,
        help: "record derivation provenance + cost metrics (implied by explain)",
    },
    FlagSpec {
        name: "--stats",
        value: None,
        help: "print the solver's counters and memory accounting",
    },
    FlagSpec {
        name: "--progress",
        value: None,
        help: "live progress snapshots on stderr",
    },
    FlagSpec {
        name: "--progress-every",
        value: Some("N"),
        help: "snapshot cadence in worklist pops (0 = final only)",
    },
    FlagSpec {
        name: "--trace-out",
        value: Some("FILE"),
        help: "write a JSONL telemetry trace to FILE",
    },
    FlagSpec {
        name: "--scale",
        value: Some("S"),
        help: "workload scale factor for `gen`",
    },
    FlagSpec {
        name: "--pointer",
        value: Some("NAME"),
        help: "query: print one variable's points-to set",
    },
    FlagSpec {
        name: "--alias",
        value: None,
        help: "query: may-alias of the two named variables",
    },
    FlagSpec {
        name: "--socket",
        value: Some("PATH"),
        help: "serve: listen on a Unix socket at PATH instead of stdin/stdout",
    },
    FlagSpec {
        name: "--deadline-ms",
        value: Some("N"),
        help: "serve: per-request deadline; overruns get a deadline_exceeded envelope",
    },
    FlagSpec {
        name: "--help",
        value: None,
        help: "print this help",
    },
];

/// Renders the flag table as the `FLAGS:` section of `--help`.
pub fn flag_help() -> String {
    let mut out = String::from("FLAGS:\n");
    for f in FLAGS {
        let head = match f.value {
            Some(v) => format!("{} {}", f.name, v),
            None => f.name.to_string(),
        };
        out.push_str(&format!("  {head:<22} {}\n", f.help));
    }
    out.pop(); // trailing newline
    out
}

/// Parsed command line: positional arguments plus `--flag [value]` options.
#[derive(Debug, Default)]
pub struct Opts {
    pub positional: Vec<String>,
    flags: Vec<(String, Option<String>)>,
}

impl Opts {
    /// Parses `args` against [`FLAGS`].
    ///
    /// # Errors
    ///
    /// Returns a [`AntErrorKind::Usage`](ant_common::AntErrorKind::Usage)
    /// error when a flag is not in the table or a valued flag is missing
    /// its value.
    pub fn parse(args: &[String]) -> Result<Opts, AntError> {
        let mut out = Opts::default();
        let mut it = args.iter().peekable();
        while let Some(a) = it.next() {
            if a.starts_with('-') {
                let name = if a == "-h" { "--help" } else { a.as_str() };
                let spec = FLAGS
                    .iter()
                    .find(|f| f.name == name)
                    .ok_or_else(|| AntError::usage(format!("unknown flag `{a}` (try --help)")))?;
                if spec.value.is_some() {
                    let v = it
                        .next()
                        .ok_or_else(|| AntError::usage(format!("flag {a} needs a value")))?;
                    out.flags.push((name.to_owned(), Some(v.clone())));
                } else {
                    out.flags.push((name.to_owned(), None));
                }
            } else {
                out.positional.push(a.clone());
            }
        }
        Ok(out)
    }

    /// The value of flag `name`, if present.
    pub fn value(&self, name: &str) -> Option<&str> {
        self.flags
            .iter()
            .find(|(f, _)| f == name)
            .and_then(|(_, v)| v.as_deref())
    }

    /// Every value of a repeatable flag `name`, in command-line order.
    pub fn values(&self, name: &str) -> Vec<&str> {
        self.flags
            .iter()
            .filter(|(f, _)| f == name)
            .filter_map(|(_, v)| v.as_deref())
            .collect()
    }

    /// Whether the flag `name` was passed at all.
    pub fn has(&self, name: &str) -> bool {
        self.flags.iter().any(|(f, _)| f == name)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn s(v: &[&str]) -> Vec<String> {
        v.iter().map(|x| x.to_string()).collect()
    }

    #[test]
    fn positionals_and_flags() {
        let o = Opts::parse(&s(&["a.c", "--stats", "-o", "out", "b"])).unwrap();
        assert_eq!(o.positional, vec!["a.c", "b"]);
        assert!(o.has("--stats"));
        assert_eq!(o.value("-o"), Some("out"));
        assert_eq!(o.value("--algorithm"), None);
    }

    #[test]
    fn missing_value_is_an_error() {
        let err = Opts::parse(&s(&["--algorithm"])).unwrap_err();
        assert_eq!(err.kind(), ant_common::AntErrorKind::Usage);
        assert!(err.message().contains("needs a value"));
    }

    #[test]
    fn unknown_flags_are_rejected() {
        let err = Opts::parse(&s(&["a.c", "--frobnicate"])).unwrap_err();
        assert_eq!(err.kind(), ant_common::AntErrorKind::Usage);
        assert!(err.message().contains("unknown flag `--frobnicate`"));
        let err = Opts::parse(&s(&["--threds", "4"])).unwrap_err();
        assert!(err.message().contains("unknown flag"));
    }

    #[test]
    fn repeated_flags_collect_in_order() {
        let o = Opts::parse(&s(&["--base", "a.ant", "--add", "b.ant", "--add", "c.ant"])).unwrap();
        assert_eq!(o.value("--base"), Some("a.ant"));
        assert_eq!(o.values("--add"), vec!["b.ant", "c.ant"]);
        assert!(o.values("--base").len() == 1);
    }

    #[test]
    fn short_help_aliases_long() {
        let o = Opts::parse(&s(&["-h"])).unwrap();
        assert!(o.has("--help"));
    }

    #[test]
    fn help_text_covers_every_flag() {
        let text = flag_help();
        for f in FLAGS {
            assert!(text.contains(f.name), "--help must mention {}", f.name);
        }
        assert!(text.contains("--threads N"));
        assert!(text.contains("--prop MODE"));
    }
}
