//! Tiny hand-rolled option parsing (no external dependencies).

/// Parsed command line: positional arguments plus `--flag [value]` options.
#[derive(Debug, Default)]
pub struct Opts {
    pub positional: Vec<String>,
    flags: Vec<(String, Option<String>)>,
}

/// Options that take a value (everything else is boolean).
const VALUED: &[&str] = &[
    "-o",
    "--algorithm",
    "--pts",
    "--scale",
    "--seed",
    "--pointer",
    "--worklist",
    "--trace-out",
    "--progress-every",
];

impl Opts {
    /// Parses `args`.
    ///
    /// # Errors
    ///
    /// Returns a message when a valued flag is missing its value.
    pub fn parse(args: &[String]) -> Result<Opts, String> {
        let mut out = Opts::default();
        let mut it = args.iter().peekable();
        while let Some(a) = it.next() {
            if a.starts_with('-') {
                if VALUED.contains(&a.as_str()) {
                    let v = it.next().ok_or_else(|| format!("flag {a} needs a value"))?;
                    out.flags.push((a.clone(), Some(v.clone())));
                } else {
                    out.flags.push((a.clone(), None));
                }
            } else {
                out.positional.push(a.clone());
            }
        }
        Ok(out)
    }

    /// The value of flag `name`, if present.
    pub fn value(&self, name: &str) -> Option<&str> {
        self.flags
            .iter()
            .find(|(f, _)| f == name)
            .and_then(|(_, v)| v.as_deref())
    }

    /// All values of the (repeatable) flag `name` — used by `--alias a b`
    /// style flags via positionals instead; kept for symmetry.
    pub fn has(&self, name: &str) -> bool {
        self.flags.iter().any(|(f, _)| f == name)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn s(v: &[&str]) -> Vec<String> {
        v.iter().map(|x| x.to_string()).collect()
    }

    #[test]
    fn positionals_and_flags() {
        let o = Opts::parse(&s(&["a.c", "--stats", "-o", "out", "b"])).unwrap();
        assert_eq!(o.positional, vec!["a.c", "b"]);
        assert!(o.has("--stats"));
        assert_eq!(o.value("-o"), Some("out"));
        assert_eq!(o.value("--algorithm"), None);
    }

    #[test]
    fn missing_value_is_an_error() {
        let err = Opts::parse(&s(&["--algorithm"])).unwrap_err();
        assert!(err.contains("needs a value"));
    }
}
