//! The `ant` subcommands.

// The serve path in this module handles untrusted client streams; failures
// must exit with a typed code or answer with an error envelope, never
// panic. The lints keep the panic-free audit from regressing.
#![warn(
    clippy::unwrap_used,
    clippy::expect_used,
    clippy::panic,
    clippy::unreachable
)]

use crate::opts::{flag_help, Opts};
use ant_common::{AntError, QueryErrorKind, VarId};
use ant_constraints::pipeline::{PassPipeline, Prepared};
use ant_constraints::{parse_program, Program};
use ant_core::obs::prov::ProvRecorder;
use ant_core::obs::{
    FanOut, Obs, Observer, Phase, PhaseTimer, ProgressPrinter, SolveEvent, TraceWriter,
};
use ant_core::provenance::Explainer;
use ant_core::session::{AnalysisSession, SessionOptions};
use ant_core::{
    resume_dyn, resume_dyn_with_observer, resume_supported, solve_dyn_resumable,
    solve_dyn_resumable_with_observer, solve_prepared, solve_prepared_recorded,
    solve_prepared_recorded_with_observer, solve_prepared_with_observer, Algorithm, PropMode,
    PtsKind, Solution, SolveOutput, SolverConfig,
};
use ant_frontend::suite;
use std::fs::File;
use std::io;
use std::io::{BufRead, Write};

const USAGE_HEAD: &str = "\
ant — inclusion-based pointer analysis (Hardekopf & Lin, PLDI 2007)

USAGE:
  ant compile <file.c> [-o out.consts]
  ant solve   <file.c|file.consts> [--algorithm NAME] [--pts bitmap|shared|bdd]
              [--worklist fifo|lifo|lrf|divided-lrf] [--prop full|diff] [--threads N]
              [--passes normalize,ovs,hcd | --no-ovs] [--stats]
              [--trace-out trace.jsonl] [--progress] [--progress-every N]
  ant solve   --base base.c --add delta.consts [--add more.consts ...]
              incremental: solve the base once, then append each delta and
              warm-start (resume) the retained solver state when possible
  ant query   <file> --pointer NAME | --alias NAME NAME
  ant explain <file> <ptr> <obj>            why does ptr point to obj?
  ant explain-edge <file> <src> <dst>       why is there a copy edge src -> dst?
  ant gen     <benchmark> [--scale S] [-o out.consts]
  ant compare <file>
  ant serve   [file.c|file.consts] [--socket PATH] [--deadline-ms N] [--record]
              JSONL query service: one request object per line on stdin
              (or the socket), one typed response envelope per line back

ALGORITHMS: Basic HT PKH BLQ LCD HCD HT+HCD PKH+HCD BLQ+HCD LCD+HCD PKH03 LCD-DP
BENCHMARKS: emacs ghostscript gimp insight wine linux";

/// The full help text: the usage header plus the flag table rendered from
/// [`crate::opts::FLAGS`].
pub fn usage() -> String {
    format!("{USAGE_HEAD}\n\n{}", flag_help())
}

/// Parses `args`; `Ok(None)` means `--help` was requested and printed.
fn parse_opts(args: &[String]) -> Result<Option<Opts>, AntError> {
    let opts = Opts::parse(args)?;
    if opts.has("--help") {
        println!("{}", usage());
        return Ok(None);
    }
    Ok(Some(opts))
}

/// Loads a program from a `.c` source or a constraint file.
fn load(path: &str) -> Result<Program, AntError> {
    let text = std::fs::read_to_string(path)
        .map_err(|e| AntError::io(format!("cannot read {path}: {e}")).with_source(e))?;
    if path.ends_with(".c") {
        let out = ant_frontend::compile_c(&text)
            .map_err(|e| AntError::parse(format!("{path}: {e}")).with_source(e))?;
        for w in &out.warnings {
            eprintln!("warning: {w}");
        }
        Ok(out.program)
    } else {
        parse_program(&text).map_err(|e| AntError::parse(format!("{path}: {e}")).with_source(e))
    }
}

/// Typed CLI configuration, parsed exactly once per invocation from the
/// flag table — the commands below never re-inspect raw flags.
#[derive(Debug)]
pub struct CliConfig {
    /// Algorithm, worklist, snapshot cadence and thread count.
    pub solver: SolverConfig,
    /// Points-to set representation (runtime-dispatched).
    pub pts: PtsKind,
    /// The offline pass pipeline run before the solver.
    pub passes: PassPipeline,
    /// Print the solver's counters after solving.
    pub stats: bool,
    /// Live progress snapshots on stderr.
    pub progress: bool,
    /// JSONL telemetry trace destination.
    pub trace_out: Option<String>,
    /// Attach the derivation recorder (provenance arenas + cost metrics).
    pub record: bool,
}

impl CliConfig {
    fn from_opts(opts: &Opts) -> Result<CliConfig, AntError> {
        let algorithm = match opts.value("--algorithm") {
            None => Algorithm::LcdHcd,
            Some(name) => Algorithm::parse(name)
                .ok_or_else(|| AntError::usage(format!("unknown algorithm `{name}`")))?,
        };
        let worklist = match opts.value("--worklist") {
            None => ant_common::worklist::WorklistKind::DividedLrf,
            Some("fifo") => ant_common::worklist::WorklistKind::Fifo,
            Some("lifo") => ant_common::worklist::WorklistKind::Lifo,
            Some("lrf") => ant_common::worklist::WorklistKind::Lrf,
            Some("divided-lrf") => ant_common::worklist::WorklistKind::DividedLrf,
            Some(other) => return Err(AntError::usage(format!("unknown worklist `{other}`"))),
        };
        let progress_every = match opts.value("--progress-every") {
            None => SolverConfig::DEFAULT_PROGRESS_EVERY,
            Some(n) => n.parse::<u32>().map_err(|_| {
                AntError::usage(format!(
                    "bad --progress-every `{n}` (want a non-negative integer)"
                ))
            })?,
        };
        let threads = match opts.value("--threads") {
            None => ant_core::threads_from_env(),
            Some(n) => n.parse::<usize>().ok().filter(|&t| t >= 1).ok_or_else(|| {
                AntError::usage(format!("bad --threads `{n}` (want a positive integer)"))
            })?,
        };
        let pts = match opts.value("--pts") {
            None => PtsKind::Bitmap,
            Some(name) => PtsKind::parse(name).ok_or_else(|| {
                AntError::usage(format!("unknown points-to representation `{name}`"))
            })?,
        };
        let prop = match opts.value("--prop") {
            None => PropMode::Full,
            Some(name) => PropMode::parse(name)
                .ok_or_else(|| AntError::usage(format!("unknown propagation mode `{name}`")))?,
        };
        let passes = match (opts.value("--passes"), opts.has("--no-ovs")) {
            (Some(_), true) => {
                return Err(AntError::usage(
                    "--passes and --no-ovs are mutually exclusive (--no-ovs means \
                     --passes none)",
                ))
            }
            (Some(spec), false) => PassPipeline::parse(spec)?,
            (None, true) => PassPipeline::empty(),
            (None, false) => PassPipeline::standard(),
        };
        Ok(CliConfig {
            solver: SolverConfig {
                algorithm,
                worklist,
                progress_every,
                threads,
                prop,
            },
            pts,
            passes,
            stats: opts.has("--stats"),
            progress: opts.has("--progress"),
            trace_out: opts.value("--trace-out").map(str::to_owned),
            record: opts.has("--record"),
        })
    }
}

/// Observer stack assembled from `--trace-out` / `--progress`.
struct Telemetry {
    trace: Option<(String, TraceWriter<File>)>,
    progress: Option<ProgressPrinter<io::Stderr>>,
}

impl Telemetry {
    /// `Ok(None)` when no telemetry flag is present.
    fn from_config(cfg: &CliConfig) -> Result<Option<Telemetry>, AntError> {
        let trace = match &cfg.trace_out {
            None => None,
            Some(path) => {
                let file = File::create(path).map_err(|e| {
                    AntError::io(format!("cannot create {path}: {e}")).with_source(e)
                })?;
                Some((path.clone(), TraceWriter::new(file)))
            }
        };
        let progress = cfg.progress.then(ProgressPrinter::stderr);
        if trace.is_none() && progress.is_none() {
            return Ok(None);
        }
        Ok(Some(Telemetry { trace, progress }))
    }

    fn fan(&mut self) -> FanOut<'_> {
        let mut fan = FanOut::new();
        if let Some((_, writer)) = &mut self.trace {
            fan.push(writer);
        }
        if let Some(printer) = &mut self.progress {
            fan.push(printer);
        }
        fan
    }

    /// Flushes the trace file and surfaces any write error.
    fn finish(self) -> Result<(), AntError> {
        if let Some((path, writer)) = self.trace {
            if let Some(e) = writer.error() {
                return Err(AntError::io(format!("failed writing {path}: {e}")));
            }
            writer.into_inner();
            eprintln!("trace written to {path}");
        }
        Ok(())
    }
}

/// An [`Obs`] over the fan-out when telemetry is on, else a silent one.
fn obs_over<'a>(fan: &'a mut Option<FanOut<'_>>) -> Obs<'a> {
    match fan {
        Some(fan) => Obs::new(fan, 0),
        None => Obs::none(),
    }
}

type RunOutput = (Program, SolveOutput, Prepared, Option<ProvRecorder>);

fn run(input: &str, cfg: &CliConfig) -> Result<RunOutput, AntError> {
    let mut telemetry = Telemetry::from_config(cfg)?;
    let result = {
        let mut fan = telemetry.as_mut().map(Telemetry::fan);

        // Load (and for .c inputs, compile) under a `parse` span.
        let program = {
            let mut obs = obs_over(&mut fan);
            let mut timer = PhaseTimer::new();
            timer.start(Phase::Parse, &mut obs);
            let loaded = load(input);
            timer.stop(&mut obs);
            loaded?
        };

        let prepared = {
            let mut obs = obs_over(&mut fan);
            cfg.passes.run_with_obs(&program, &mut obs)
        };
        let (out, prov) = match (&mut fan, cfg.record) {
            (None, false) => (solve_prepared(&prepared, &cfg.solver, cfg.pts), None),
            (None, true) => {
                let (out, prov) = solve_prepared_recorded(&prepared, &cfg.solver, cfg.pts);
                (out, Some(prov))
            }
            (Some(fan), false) => (
                solve_prepared_with_observer(&prepared, &cfg.solver, cfg.pts, &mut *fan),
                None,
            ),
            (Some(fan), true) => {
                let (out, prov) = solve_prepared_recorded_with_observer(
                    &prepared,
                    &cfg.solver,
                    cfg.pts,
                    &mut *fan,
                );
                (out, Some(prov))
            }
        };
        (program, out, prepared, prov)
    };
    if let Some(telemetry) = telemetry {
        telemetry.finish()?;
    }
    Ok(result)
}

fn print_pts(program: &Program, solution: &Solution, v: VarId) {
    let names: Vec<&str> = solution
        .points_to(v)
        .iter()
        .map(|&l| program.var_name(VarId::from_u32(l)))
        .collect();
    println!("pts({}) = {{{}}}", program.var_name(v), names.join(", "));
}

pub fn compile(args: &[String]) -> Result<(), AntError> {
    let Some(opts) = parse_opts(args)? else {
        return Ok(());
    };
    let [input] = opts.positional.as_slice() else {
        return Err(AntError::usage("compile takes exactly one input file"));
    };
    if !input.ends_with(".c") {
        return Err(AntError::usage("compile expects a .c file"));
    }
    let program = load(input)?;
    let text = program.to_text();
    match opts.value("-o") {
        Some(path) => {
            std::fs::write(path, text)
                .map_err(|e| AntError::io(format!("cannot write {path}: {e}")).with_source(e))?;
            eprintln!(
                "{}: {} variables, {}",
                path,
                program.num_vars(),
                program.stats()
            );
        }
        None => print!("{text}"),
    }
    Ok(())
}

pub fn solve(args: &[String]) -> Result<(), AntError> {
    let Some(opts) = parse_opts(args)? else {
        return Ok(());
    };
    if opts.has("--base") || opts.has("--add") {
        let Some(base) = opts.value("--base") else {
            return Err(AntError::usage("--add needs --base FILE"));
        };
        let adds = opts.values("--add");
        if adds.is_empty() {
            return Err(AntError::usage("--base needs at least one --add FILE"));
        }
        if !opts.positional.is_empty() {
            return Err(AntError::usage(
                "--base/--add replace the positional input file",
            ));
        }
        return solve_incremental(base, &adds, &opts);
    }
    let cfg = CliConfig::from_opts(&opts)?;
    let [input] = opts.positional.as_slice() else {
        return Err(AntError::usage("solve takes exactly one input file"));
    };
    let (program, out, prepared, _) = run(input, &cfg)?;
    let solution = out.solution;
    for s in &prepared.summaries {
        eprintln!(
            "pass {}: {} -> {} constraints ({:.0}% removed) in {:.3}ms",
            s.pass,
            s.constraints_before,
            s.constraints_after,
            s.reduction_percent(),
            s.elapsed.as_secs_f64() * 1000.0
        );
    }
    eprintln!(
        "solved with {} in {:.3}ms",
        cfg.solver.algorithm,
        out.stats.solve_time.as_secs_f64() * 1000.0
    );
    if cfg.stats {
        eprintln!("{}", out.stats);
    }
    for v in program.vars() {
        if !solution.points_to(v).is_empty() {
            print_pts(&program, &solution, v);
        }
    }
    Ok(())
}

/// The incremental lane of `ant solve`: solve `--base` once, then append
/// each `--add` delta in command-line order, warm-starting from the
/// retained solver state when the configuration supports it. The output is
/// identical either way — a resumed solve is bit-identical to a
/// from-scratch solve of the union program (monotonicity; see DESIGN.md
/// §14) — so non-resumable configurations (HT, BLQ, the HCD variants, the
/// BDD representation) fall back to explicit from-scratch union solves.
fn solve_incremental(base_path: &str, adds: &[&str], opts: &Opts) -> Result<(), AntError> {
    let mut cfg = CliConfig::from_opts(opts)?;
    if cfg.record {
        return Err(AntError::usage(
            "--record is not supported with --base/--add (retained states do not carry \
             provenance arenas); solve the union in one shot to record it",
        ));
    }
    // Offline OVS/HCD equivalences are pinned to the program they were
    // computed for (they are not delta-stable), so the incremental lane
    // defaults to the normalize-only pipeline. An explicit --passes
    // overrides this; non-delta-stable passes then re-run over each union
    // and the warm start is skipped.
    if opts.value("--passes").is_none() && !opts.has("--no-ovs") {
        cfg.passes = PassPipeline::parse("normalize")?;
    }
    if !resume_supported(&cfg.solver, cfg.pts) {
        eprintln!(
            "note: {}/{} does not retain resumable state; each --add re-solves from scratch",
            cfg.solver.algorithm, cfg.pts
        );
    }
    let mut telemetry = Telemetry::from_config(&cfg)?;
    let (program, out, prepared) = {
        let mut fan = telemetry.as_mut().map(Telemetry::fan);
        let mut program = {
            let mut obs = obs_over(&mut fan);
            let mut timer = PhaseTimer::new();
            timer.start(Phase::Parse, &mut obs);
            let loaded = load(base_path);
            timer.stop(&mut obs);
            loaded?
        };
        let mut prepared = {
            let mut obs = obs_over(&mut fan);
            cfg.passes.run_with_obs(&program, &mut obs)
        };
        let (mut out, mut state) = match &mut fan {
            Some(fan) => solve_dyn_resumable_with_observer(
                &prepared.program,
                &cfg.solver,
                cfg.pts,
                &mut *fan,
            ),
            None => solve_dyn_resumable(&prepared.program, &cfg.solver, cfg.pts),
        };
        eprintln!(
            "base {base_path}: {}; solved with {} in {:.3}ms",
            program.stats(),
            cfg.solver.algorithm,
            out.stats.solve_time.as_secs_f64() * 1000.0
        );
        for path in adds {
            let addition = {
                let mut obs = obs_over(&mut fan);
                let mut timer = PhaseTimer::new();
                timer.start(Phase::Parse, &mut obs);
                let loaded = load(path);
                timer.stop(&mut obs);
                loaded?
            };
            let delta = program.delta_from(&addition).map_err(|e| {
                AntError::parse(format!(
                    "{path}: addition does not compose with the base: {e}"
                ))
            })?;
            let union = program.append_delta(&delta);
            let delta_prepared = cfg.passes.prepare_delta(&program, &prepared, &union);
            let delta_lane = delta_prepared.is_some();
            let next_prepared = match delta_prepared {
                Some(p) => p,
                None => {
                    let mut obs = obs_over(&mut fan);
                    cfg.passes.run_with_obs(&union, &mut obs)
                }
            };
            let mut resumed = false;
            let (next_out, next_state) = match (delta_lane, state.take()) {
                (true, Some(st)) => {
                    let r = match &mut fan {
                        Some(fan) => {
                            resume_dyn_with_observer(st, &next_prepared.program, &mut *fan)
                        }
                        None => resume_dyn(st, &next_prepared.program),
                    };
                    match r {
                        Ok((o, s)) => {
                            resumed = true;
                            (o, Some(s))
                        }
                        Err(e) => {
                            eprintln!("warning: resume rejected ({e}); re-solving from scratch");
                            match &mut fan {
                                Some(fan) => solve_dyn_resumable_with_observer(
                                    &next_prepared.program,
                                    &cfg.solver,
                                    cfg.pts,
                                    &mut *fan,
                                ),
                                None => solve_dyn_resumable(
                                    &next_prepared.program,
                                    &cfg.solver,
                                    cfg.pts,
                                ),
                            }
                        }
                    }
                }
                _ => match &mut fan {
                    Some(fan) => solve_dyn_resumable_with_observer(
                        &next_prepared.program,
                        &cfg.solver,
                        cfg.pts,
                        &mut *fan,
                    ),
                    None => solve_dyn_resumable(&next_prepared.program, &cfg.solver, cfg.pts),
                },
            };
            eprintln!(
                "add {path}: +{} vars, +{} constraints; {} in {:.3}ms",
                delta.num_new_vars(),
                delta.constraints().len(),
                if resumed {
                    "resumed"
                } else {
                    "re-solved from scratch"
                },
                next_out.stats.solve_time.as_secs_f64() * 1000.0
            );
            out = next_out;
            state = next_state;
            program = union;
            prepared = next_prepared;
        }
        (program, out, prepared)
    };
    if let Some(telemetry) = telemetry {
        telemetry.finish()?;
    }
    let mut out = out;
    if !prepared.mapping.is_identity() {
        out.solution = out.solution.expand(&prepared.mapping);
    }
    if cfg.stats {
        eprintln!("{}", out.stats);
    }
    let solution = out.solution;
    for v in program.vars() {
        if !solution.points_to(v).is_empty() {
            print_pts(&program, &solution, v);
        }
    }
    Ok(())
}

pub fn query(args: &[String]) -> Result<(), AntError> {
    let Some(opts) = parse_opts(args)? else {
        return Ok(());
    };
    let cfg = CliConfig::from_opts(&opts)?;
    let [input, rest @ ..] = opts.positional.as_slice() else {
        return Err(AntError::usage("query takes an input file"));
    };
    let (program, out, _prepared, _) = run(input, &cfg)?;
    let solution = out.solution;
    if let Some(name) = opts.value("--pointer") {
        let names = solution.points_to_names(&program, name)?;
        println!("pts({name}) = {{{}}}", names.join(", "));
        return Ok(());
    }
    if opts.has("--alias") {
        let [a, b] = rest else {
            return Err(AntError::usage(
                "--alias takes two variable names: ant query f --alias a b",
            ));
        };
        println!(
            "may_alias({a}, {b}) = {}",
            solution.may_alias_names(&program, a, b)?
        );
        return Ok(());
    }
    Err(AntError::usage("query needs --pointer NAME or --alias A B"))
}

/// Solves with the derivation recorder attached and returns everything an
/// explanation needs. Shared by `explain` and `explain-edge`.
fn run_recorded(
    input: &str,
    opts: &Opts,
) -> Result<(Program, SolveOutput, Prepared, ProvRecorder), AntError> {
    let mut cfg = CliConfig::from_opts(opts)?;
    cfg.record = true;
    let (program, out, prepared, prov) = run(input, &cfg)?;
    let prov = prov.ok_or_else(|| {
        AntError::solver("internal: recorded solve returned no provenance despite --record")
    })?;
    Ok((program, out, prepared, prov))
}

fn named_var(program: &Program, name: &str) -> Result<VarId, AntError> {
    program.var_by_name(name).ok_or_else(|| {
        AntError::query(
            QueryErrorKind::UnknownVar,
            format!("no variable named `{name}`"),
        )
    })
}

/// The rendered derivation chain for `obj ∈ pts(ptr)`, in original
/// variable names — the workhorse behind `ant explain`, separated so
/// tests can assert on the chain itself.
fn explain_lines(input: &str, ptr: &str, obj: &str, opts: &Opts) -> Result<Vec<String>, AntError> {
    let (program, out, prepared, prov) = run_recorded(input, opts)?;
    let vp = named_var(&program, ptr)?;
    let vo = named_var(&program, obj)?;
    if !out.solution.may_point_to(vp, vo) {
        return Err(AntError::query(
            QueryErrorKind::NotFound,
            format!("{obj} ∉ pts({ptr}) — nothing to explain"),
        ));
    }
    let mut ex = Explainer::new(&prov, program.num_vars()).with_mapping(&prepared.mapping);
    let steps = ex.explain(vp, vo).ok_or_else(|| {
        AntError::query(
            QueryErrorKind::NotFound,
            format!("no recorded derivation for {obj} ∈ pts({ptr})"),
        )
    })?;
    Ok(steps.iter().map(|s| s.render(&program)).collect())
}

pub fn explain(args: &[String]) -> Result<(), AntError> {
    let Some(opts) = parse_opts(args)? else {
        return Ok(());
    };
    let [input, ptr, obj] = opts.positional.as_slice() else {
        return Err(AntError::usage(
            "explain takes an input file and two variable names: ant explain f.c p x",
        ));
    };
    let lines = explain_lines(input, ptr, obj, &opts)?;
    println!("why {obj} ∈ pts({ptr}):");
    for line in &lines {
        println!("  {line}");
    }
    Ok(())
}

pub fn explain_edge(args: &[String]) -> Result<(), AntError> {
    let Some(opts) = parse_opts(args)? else {
        return Ok(());
    };
    let [input, a, b] = opts.positional.as_slice() else {
        return Err(AntError::usage(
            "explain-edge takes an input file and two variable names: ant explain-edge f.c a b",
        ));
    };
    let (program, _out, prepared, prov) = run_recorded(input, &opts)?;
    let va = named_var(&program, a)?;
    let vb = named_var(&program, b)?;
    let mut ex = Explainer::new(&prov, program.num_vars()).with_mapping(&prepared.mapping);
    let explanation = ex.explain_edge(va, vb).ok_or_else(|| {
        AntError::query(
            QueryErrorKind::NotFound,
            format!("no recorded copy edge {a} → {b}"),
        )
    })?;
    println!("{}", explanation.render(&program));
    Ok(())
}

pub fn gen(args: &[String]) -> Result<(), AntError> {
    let Some(opts) = parse_opts(args)? else {
        return Ok(());
    };
    let [name] = opts.positional.as_slice() else {
        return Err(AntError::usage("gen takes one benchmark name"));
    };
    let scale: f64 = match opts.value("--scale") {
        None => suite::DEFAULT_SCALE,
        Some(s) => s
            .parse()
            .map_err(|_| AntError::usage(format!("bad scale `{s}`")))?,
    };
    let bench = suite::benchmark(name, scale)
        .ok_or_else(|| AntError::usage(format!("unknown benchmark `{name}`")))?;
    let program = bench.program();
    eprintln!("{name}@{scale}: {}", program.stats());
    let text = program.to_text();
    match opts.value("-o") {
        Some(path) => std::fs::write(path, text)
            .map_err(|e| AntError::io(format!("cannot write {path}: {e}")).with_source(e))?,
        None => print!("{text}"),
    }
    Ok(())
}

pub fn compare(args: &[String]) -> Result<(), AntError> {
    let Some(opts) = parse_opts(args)? else {
        return Ok(());
    };
    let cfg = CliConfig::from_opts(&opts)?;
    let [input] = opts.positional.as_slice() else {
        return Err(AntError::usage("compare takes exactly one input file"));
    };
    let program = load(input)?;
    let prepared = cfg.passes.run(&program);
    println!(
        "{:<8} {:>10} {:>10} {:>10} {:>12}",
        "algo", "time(ms)", "collapsed", "searched", "propagations"
    );
    let mut reference: Option<Solution> = None;
    for alg in Algorithm::ALL {
        let mut config = cfg.solver;
        config.algorithm = alg;
        let out = solve_prepared(&prepared, &config, cfg.pts);
        println!(
            "{:<8} {:>10.2} {:>10} {:>10} {:>12}",
            alg.name(),
            out.stats.solve_time.as_secs_f64() * 1000.0,
            out.stats.nodes_collapsed,
            out.stats.nodes_searched,
            out.stats.propagations
        );
        let solution = out.solution;
        match &reference {
            None => reference = Some(solution),
            Some(r) => {
                if !solution.equiv(r) {
                    return Err(AntError::solver(format!(
                        "{alg} disagrees with the reference solution"
                    )));
                }
            }
        }
    }
    println!("all algorithms agree ✓");
    Ok(())
}

/// The `ant serve` session loop: a long-lived [`AnalysisSession`] answering
/// JSONL requests on stdin/stdout (or a Unix socket with `--socket`), one
/// typed response envelope per line. The session solves lazily on the
/// first query and caches solves by content key, so repeated loads of the
/// same translation unit are free; malformed or failing requests get
/// error envelopes and never terminate the process.
pub fn serve(args: &[String]) -> Result<(), AntError> {
    let Some(opts) = parse_opts(args)? else {
        return Ok(());
    };
    let cfg = CliConfig::from_opts(&opts)?;
    let deadline_ms = match opts.value("--deadline-ms") {
        None => None,
        Some(n) => Some(n.parse::<u64>().map_err(|_| {
            AntError::usage(format!(
                "bad --deadline-ms `{n}` (want a non-negative integer)"
            ))
        })?),
    };
    let mut session_opts = SessionOptions::new(cfg.solver);
    session_opts.pts = cfg.pts;
    session_opts.passes = if cfg.passes.is_empty() {
        "none".to_string()
    } else {
        cfg.passes.names().join(",")
    };
    session_opts.record = cfg.record;
    session_opts.deadline_ms = deadline_ms;
    session_opts.threads = cfg.solver.threads;
    let mut session = AnalysisSession::new(session_opts)?;
    // The positional file is pre-loaded before serving; `.c` sources are
    // compiled here (the protocol's `load` op only accepts constraint
    // programs, so the CLI is where C enters a session).
    match opts.positional.as_slice() {
        [] => {}
        [input] => {
            let program = load(input)?;
            eprintln!("loaded {input}: {}", program.stats());
            session.load_program(program)?;
        }
        _ => return Err(AntError::usage("serve takes at most one input file")),
    }
    let mut telemetry = Telemetry::from_config(&cfg)?;
    let mut metrics = ant_core::obs::MetricsRegistry::new();
    {
        let mut fan = telemetry.as_mut().map(Telemetry::fan);
        match opts.value("--socket") {
            None => {
                let stdin = io::stdin();
                let stdout = io::stdout();
                serve_loop(
                    &mut session,
                    stdin.lock(),
                    stdout.lock(),
                    &mut fan,
                    &mut metrics,
                )?;
            }
            Some(path) => serve_socket(&mut session, path, &mut fan, &mut metrics)?,
        }
        // Fold the session's solve-cache counters into the registry so the
        // metrics summary reports cache effectiveness alongside latencies.
        let (cache_hits, cache_misses) = session.cache_counters();
        metrics.add("serve.cache.hits", cache_hits);
        metrics.add("serve.cache.misses", cache_misses);
        // One metrics summary per serve run, so traces carry the request,
        // error and latency aggregates next to the per-request events.
        if let Some(fan) = &mut fan {
            if fan.enabled() {
                fan.on_event(&SolveEvent::Metrics(metrics.snapshot(8)));
            }
        }
    }
    let (solves, _) = session.solve_counters();
    let (cache_hits, cache_misses) = session.cache_counters();
    eprintln!(
        "served {} requests ({} errors), {solves} solves, \
         {cache_hits} cache hits, {cache_misses} cache misses",
        metrics.counter("serve.requests"),
        metrics.counter("serve.errors"),
    );
    if let Some(telemetry) = telemetry {
        telemetry.finish()?;
    }
    Ok(())
}

/// Answers request lines from `reader` on `session`, writing one envelope
/// line per request to `writer` (flushed per line, so pipe clients see
/// answers promptly). Lines are read through
/// [`read_request_line`](ant_core::session::read_request_line) under the
/// [`MAX_REQUEST_LINE`](ant_core::session::MAX_REQUEST_LINE) cap, so an
/// oversized line or invalid UTF-8 gets a `malformed_request` envelope and
/// the connection keeps serving; only a genuine read failure ends it.
/// Every reply is mirrored as a [`SolveEvent::Query`] to the telemetry
/// fan-out and aggregated into `metrics`. Returns `Ok(true)` when a
/// `shutdown` request ended the loop, `Ok(false)` on EOF.
fn serve_loop(
    session: &mut AnalysisSession,
    mut reader: impl BufRead,
    mut writer: impl Write,
    fan: &mut Option<FanOut<'_>>,
    metrics: &mut ant_core::obs::MetricsRegistry,
) -> Result<bool, AntError> {
    use ant_core::session::{read_request_line, MAX_REQUEST_LINE};
    while let Some(line) = read_request_line(&mut reader, MAX_REQUEST_LINE) {
        let reply = match line {
            Ok(line) => {
                if line.trim().is_empty() {
                    continue;
                }
                session.handle_line(&line)
            }
            // Transport-level rejections (length cap, invalid UTF-8) are
            // answered like any malformed request; I/O errors end the
            // connection.
            Err(e) if matches!(e.kind(), ant_common::AntErrorKind::Io) => return Err(e),
            Err(e) => session.transport_error_reply(&e),
        };
        writeln!(writer, "{}", reply.json)?;
        writer.flush()?;
        metrics.add("serve.requests", 1);
        if !reply.ok {
            metrics.add("serve.errors", 1);
        }
        metrics.observe("serve.latency_micros", reply.micros);
        if let Some(fan) = fan {
            if fan.enabled() {
                fan.on_event(&SolveEvent::Query {
                    op: reply.op,
                    ok: reply.ok,
                    micros: reply.micros,
                });
            }
        }
        if reply.shutdown {
            return Ok(true);
        }
    }
    Ok(false)
}

/// Removes the serve lockfile when the server exits, however it exits.
#[cfg(unix)]
struct LockfileGuard(std::path::PathBuf);

#[cfg(unix)]
impl Drop for LockfileGuard {
    fn drop(&mut self) {
        let _ = std::fs::remove_file(&self.0);
    }
}

/// Serves connections on a Unix socket, one client at a time. A dropped
/// connection only ends that client; a `shutdown` request stops the
/// server (and removes the socket file).
///
/// Before unlinking a stale socket the server takes `<path>.lock`
/// exclusively (`O_CREAT|O_EXCL`): two servers racing on the same path
/// would otherwise both unlink-and-bind, with the loser silently stealing
/// the winner's socket. The bound socket's permissions are restricted to
/// `0600` — the query protocol reads arbitrary files server-side (`load`
/// by path), so the socket must not be world-connectable.
#[cfg(unix)]
fn serve_socket(
    session: &mut AnalysisSession,
    path: &str,
    fan: &mut Option<FanOut<'_>>,
    metrics: &mut ant_core::obs::MetricsRegistry,
) -> Result<(), AntError> {
    use std::os::unix::fs::PermissionsExt;
    use std::os::unix::net::UnixListener;
    let lock_path = std::path::PathBuf::from(format!("{path}.lock"));
    std::fs::OpenOptions::new()
        .write(true)
        .create_new(true)
        .open(&lock_path)
        .map_err(|e| {
            if e.kind() == io::ErrorKind::AlreadyExists {
                AntError::io(format!(
                    "another server is starting on {path} (lockfile {} exists; \
                     remove it if that server is gone)",
                    lock_path.display()
                ))
            } else {
                AntError::io(format!(
                    "cannot create lockfile {}: {e}",
                    lock_path.display()
                ))
                .with_source(e)
            }
        })?;
    let _lock = LockfileGuard(lock_path);
    if std::fs::metadata(path).is_ok() {
        std::fs::remove_file(path).map_err(|e| {
            AntError::io(format!("cannot replace stale socket {path}: {e}")).with_source(e)
        })?;
    }
    let listener = UnixListener::bind(path)
        .map_err(|e| AntError::io(format!("cannot bind {path}: {e}")).with_source(e))?;
    std::fs::set_permissions(path, std::fs::Permissions::from_mode(0o600))
        .map_err(|e| AntError::io(format!("cannot chmod {path}: {e}")).with_source(e))?;
    eprintln!("serving on {path}");
    for conn in listener.incoming() {
        let conn = match conn {
            Ok(c) => c,
            // A failed accept leaves the listener usable; keep serving.
            Err(e) => {
                eprintln!("accept failed: {e}");
                continue;
            }
        };
        let reader = match conn.try_clone() {
            Ok(c) => io::BufReader::new(c),
            Err(e) => {
                eprintln!("connection dropped: {e}");
                continue;
            }
        };
        match serve_loop(session, reader, conn, fan, metrics) {
            Ok(true) => break,
            Ok(false) => {}
            // A client vanishing mid-reply must not kill the daemon.
            Err(e) => eprintln!("connection dropped: {e}"),
        }
    }
    let _ = std::fs::remove_file(path);
    Ok(())
}

#[cfg(not(unix))]
fn serve_socket(
    _session: &mut AnalysisSession,
    _path: &str,
    _fan: &mut Option<FanOut<'_>>,
    _metrics: &mut ant_core::obs::MetricsRegistry,
) -> Result<(), AntError> {
    Err(AntError::usage(
        "--socket is only supported on Unix platforms",
    ))
}

#[cfg(test)]
#[allow(clippy::unwrap_used, clippy::expect_used, clippy::panic)]
mod tests {
    use super::*;

    fn write_temp(name: &str, contents: &str) -> String {
        let dir = std::env::temp_dir().join("ant-cli-tests");
        std::fs::create_dir_all(&dir).unwrap();
        let path = dir.join(name);
        std::fs::write(&path, contents).unwrap();
        path.to_string_lossy().into_owned()
    }

    fn s(v: &[&str]) -> Vec<String> {
        v.iter().map(|x| x.to_string()).collect()
    }

    #[test]
    fn compile_and_solve_roundtrip() {
        let c = write_temp("t1.c", "int x; int *p; void main() { p = &x; }");
        let out = write_temp("t1.consts", "");
        compile(&s(&[&c, "-o", &out])).unwrap();
        solve(&s(&[&out])).unwrap();
        solve(&s(&[&c, "--algorithm", "HT", "--pts", "bdd", "--stats"])).unwrap();
        solve(&s(&[&c, "--pts", "shared", "--stats"])).unwrap();
    }

    /// `--pts shared` traces carry the final `repr_cache` record, and the
    /// shared solve agrees with the bitmap solve it shadows.
    #[test]
    fn solve_shared_emits_repr_cache_record() {
        use ant_core::obs::parse_object;
        let c = write_temp(
            "t7.c",
            "int x; int *p; int *q; int **a;\n\
             void main() { a = &p; p = &x; q = *a; *a = q; }",
        );
        let trace = write_temp("t7.jsonl", "");
        solve(&s(&[&c, "--pts", "shared", "--trace-out", &trace])).unwrap();
        let text = std::fs::read_to_string(&trace).unwrap();
        let cache_records: Vec<_> = text
            .lines()
            .map(|l| parse_object(l).unwrap())
            .filter(|r| r["event"].as_str() == Some("repr_cache"))
            .collect();
        assert_eq!(cache_records.len(), 1);
        let r = &cache_records[0];
        assert!(r["distinct_sets"].as_u64().unwrap() >= 1);
        assert!(r["intern_misses"].as_u64().unwrap() >= 1);
    }

    #[test]
    fn query_pointer_and_alias() {
        let c = write_temp(
            "t2.c",
            "int x; int *p; int *q; void main() { p = &x; q = p; }",
        );
        query(&s(&[&c, "--pointer", "p"])).unwrap();
        query(&s(&[&c, "--alias", "p", "q"])).unwrap();
        assert!(query(&s(&[&c, "--pointer", "nope"])).is_err());
        assert!(query(&s(&[&c])).is_err());
    }

    #[test]
    fn gen_writes_workloads() {
        let out = write_temp("t3.consts", "");
        gen(&s(&["emacs", "--scale", "0.005", "-o", &out])).unwrap();
        let program = parse_program(&std::fs::read_to_string(&out).unwrap()).unwrap();
        assert!(program.stats().total() > 50);
        assert!(gen(&s(&["nope"])).is_err());
    }

    /// Acceptance: `ant explain` produces a derivation chain in *original*
    /// variable names that terminates at a base `&` constraint — both on
    /// the raw program and after the full offline pipeline (whose merges
    /// must be composed back through the solution mapping).
    #[test]
    fn explain_terminates_at_address_of_under_any_pass_subset() {
        let c = write_temp(
            "t8.c",
            "int x; int *p; int *q; int *r; int **a;\n\
             void main() { a = &p; p = &x; q = *a; *a = q; r = q; }",
        );
        for passes in ["none", "normalize,ovs,hcd"] {
            let opts = Opts::parse(&s(&[&c, "--passes", passes])).unwrap();
            let lines = explain_lines(&c, "r", "x", &opts)
                .unwrap_or_else(|e| panic!("explain with --passes {passes}: {e}"));
            assert!(!lines.is_empty());
            let last = lines.last().unwrap();
            assert!(
                last.contains("base constraint") && last.contains("&x"),
                "--passes {passes}: chain must end at the AddressOf fact, got `{last}`"
            );
            for name in ["r", "x"] {
                assert!(
                    lines.iter().any(|l| l.contains(name)),
                    "--passes {passes}: chain renders original names ({name}): {lines:?}"
                );
            }
        }
        // The CLI entry points drive the same path end to end.
        explain(&s(&[&c, "r", "x", "--passes", "normalize,ovs,hcd"])).unwrap();
        // OVS merges the q/r equivalence class, so probe the copy edge on
        // the unpreprocessed graph where `r = q` survives as an edge.
        explain_edge(&s(&[&c, "q", "r", "--passes", "none"])).unwrap();
        assert!(
            explain(&s(&[&c, "x", "r"])).is_err(),
            "x does not point to r"
        );
        assert!(explain(&s(&[&c, "r"])).is_err(), "missing positional");
    }

    #[test]
    fn compare_agrees_on_small_input() {
        let c = write_temp(
            "t4.c",
            "int x; int *p; int **pp; void main() { p = &x; pp = &p; **pp = x; }",
        );
        compare(&s(&[&c])).unwrap();
    }

    /// Golden end-to-end check of the `--trace-out` JSONL schema: every
    /// line parses, carries `t`/`event`/`solver`, and the run produces the
    /// expected span structure plus at least one progress snapshot and one
    /// cycle collapse.
    #[test]
    fn solve_trace_out_emits_schema_conformant_jsonl() {
        use ant_core::obs::parse_object;
        // `*a ⊇ q` and `q ⊇ *a` put {*a, q} in one offline SCC, so HCD
        // collapses pts(a) with q online — guaranteeing a cycle event.
        let c = write_temp(
            "t6.c",
            "int x; int *p; int *q; int **a;\n\
             void main() { a = &p; p = &x; q = *a; *a = q; }",
        );
        let trace = write_temp("t6.jsonl", "");
        solve(&s(&[
            &c,
            "--algorithm",
            "lcd-hcd",
            "--no-ovs",
            "--threads",
            "4",
            "--record",
            "--trace-out",
            &trace,
            "--progress-every",
            "1",
        ]))
        .unwrap();
        let text = std::fs::read_to_string(&trace).unwrap();
        let records: Vec<_> = text
            .lines()
            .map(|l| parse_object(l).expect("every trace line is a flat JSON object"))
            .collect();
        assert!(!records.is_empty());
        let mut last_t = 0.0;
        for r in &records {
            let t = r["t"].as_f64().expect("t is a number");
            assert!(t >= last_t, "timestamps are monotone");
            last_t = t;
            assert!(r.contains_key("solver"));
            let event = r["event"].as_str().expect("event is a string");
            match event {
                "phase_start" => assert!(r["phase"].as_str().is_some()),
                "phase_end" => {
                    assert!(r["phase"].as_str().is_some());
                    assert!(r["seconds"].as_f64().unwrap() >= 0.0);
                }
                "progress" => {
                    for key in ["worklist", "nodes", "propagations", "pts_bytes"] {
                        assert!(r[key].as_u64().is_some(), "progress carries {key}");
                    }
                }
                "cycle_collapsed" => assert!(r["members"].as_u64().unwrap() >= 1),
                "graph_mutation" => assert!(r["edges_added"].as_u64().is_some()),
                "repr_cache" => {
                    for key in [
                        "intern_hits",
                        "intern_misses",
                        "memo_hits",
                        "memo_misses",
                        "distinct_sets",
                    ] {
                        assert!(r[key].as_u64().is_some(), "repr_cache carries {key}");
                    }
                }
                "round_summary" => {
                    for key in [
                        "round",
                        "nodes",
                        "shards",
                        "hints",
                        "hint_hits",
                        "worker_micros",
                    ] {
                        assert!(r[key].as_u64().is_some(), "round_summary carries {key}");
                    }
                }
                "shard_utilization" => {
                    for key in ["round", "shard", "nodes", "busy_micros"] {
                        assert!(r[key].as_u64().is_some(), "shard_utilization carries {key}");
                    }
                }
                "pass_summary" => {
                    assert!(r["pass"].as_str().is_some());
                    for key in [
                        "constraints_before",
                        "constraints_after",
                        "vars_merged",
                        "micros",
                    ] {
                        assert!(r[key].as_u64().is_some(), "pass_summary carries {key}");
                    }
                }
                "solver_start" => {}
                "resume" => {
                    assert!(r["new_vars"].as_u64().is_some());
                    assert!(r["new_constraints"].as_u64().is_some());
                }
                "metrics" => {
                    let kind = r["kind"].as_str().expect("metrics lines carry kind");
                    match kind {
                        "summary" => {
                            for key in ["counters", "hists", "tops"] {
                                assert!(r[key].as_u64().is_some(), "summary carries {key}");
                            }
                        }
                        "counter" => {
                            assert!(r["name"].as_str().is_some());
                            assert!(r["value"].as_u64().is_some());
                        }
                        "hist" => {
                            assert!(r["name"].as_str().is_some());
                            assert!(r["buckets"].as_str().is_some());
                        }
                        "top" => {
                            assert!(r["name"].as_str().is_some());
                            assert!(r["entries"].as_str().is_some());
                        }
                        other => panic!("unknown metrics kind `{other}`"),
                    }
                }
                other => panic!("unknown event kind `{other}`"),
            }
        }
        let count = |ev: &str| {
            records
                .iter()
                .filter(|r| r["event"].as_str() == Some(ev))
                .count()
        };
        assert_eq!(count("solver_start"), 1);
        assert!(count("progress") >= 1, "at least one snapshot per run");
        assert!(count("cycle_collapsed") >= 1, "HCD collapsed the cycle");
        assert!(count("round_summary") >= 1, "BSP rounds leave summaries");
        assert!(
            records
                .iter()
                .any(|r| r["event"].as_str() == Some("metrics")
                    && r["kind"].as_str() == Some("summary")),
            "recorded runs flush a metrics summary"
        );
        assert_eq!(count("phase_start"), count("phase_end"), "spans balance");
        let phases: Vec<_> = records
            .iter()
            .filter(|r| r["event"].as_str() == Some("phase_start"))
            .map(|r| r["phase"].as_str().unwrap().to_owned())
            .collect();
        for expected in ["parse", "offline_hcd", "offline_scc", "solve"] {
            assert!(
                phases.iter().any(|p| p == expected),
                "saw a {expected} span"
            );
        }
    }

    #[test]
    fn bad_inputs_error_cleanly() {
        assert!(load("/nonexistent/file.c").is_err());
        assert!(compile(&s(&["not_c.txt"])).is_err());
        assert!(solve(&s(&[])).is_err());
        let c = write_temp("t5.c", "int x;");
        assert!(solve(&s(&[&c, "--algorithm", "WAT"])).is_err());
        assert!(solve(&s(&[&c, "--pts", "rope"])).is_err());
        assert!(solve(&s(&[&c, "--threads", "0"])).is_err());
        assert!(solve(&s(&[&c, "--threads", "many"])).is_err());
        assert!(solve(&s(&[&c, "--prop", "wat"])).is_err());
        let err = solve(&s(&[&c, "--fast"])).unwrap_err();
        assert!(err.message().contains("unknown flag `--fast`"));
    }

    /// Every failure class maps to its own exit code through
    /// [`AntError::kind`] — the contract scripted callers rely on.
    #[test]
    fn error_kinds_are_typed_for_exit_codes() {
        use ant_common::AntErrorKind;
        let c = write_temp("t10.c", "int x; int *p; void main() { p = &x; }");
        let kind = |r: Result<(), AntError>| r.unwrap_err().kind();
        assert_eq!(kind(solve(&s(&["--pts", "rope", &c]))), AntErrorKind::Usage);
        assert_eq!(kind(solve(&s(&["/nonexistent.consts"]))), AntErrorKind::Io);
        let bad = write_temp("t10.consts", "p = &&&");
        assert_eq!(kind(solve(&s(&[&bad]))), AntErrorKind::Parse);
        assert_eq!(
            kind(solve(&s(&[&c, "--passes", "hcd,ovs"]))),
            AntErrorKind::Pipeline
        );
        assert_eq!(
            kind(query(&s(&[&c, "--pointer", "nope"]))),
            AntErrorKind::Query(QueryErrorKind::UnknownVar)
        );
        assert_eq!(
            kind(explain(&s(&[&c, "x", "p"]))),
            AntErrorKind::Query(QueryErrorKind::NotFound)
        );
    }

    #[test]
    fn help_flag_short_circuits_every_command() {
        for cmd in [
            compile,
            solve,
            query,
            explain,
            explain_edge,
            gen,
            compare,
            serve,
        ] {
            cmd(&s(&["--help"])).unwrap();
        }
        assert!(usage().contains("--threads N"));
        assert!(usage().contains("--prop MODE"));
        assert!(usage().contains("ant serve"));
        assert!(usage().contains("--socket PATH"));
        assert!(usage().contains("--deadline-ms N"));
    }

    #[test]
    fn serve_rejects_bad_invocations() {
        let c = write_temp("t11.c", "int x;");
        let err = serve(&s(&[&c, &c])).unwrap_err();
        assert!(err.message().contains("at most one input file"));
        let err = serve(&s(&["--deadline-ms", "soon"])).unwrap_err();
        assert_eq!(err.kind(), ant_common::AntErrorKind::Usage);
        assert!(serve(&s(&["/nonexistent/f.consts"])).is_err());
    }

    /// End-to-end over a real Unix socket: load a compiled program at
    /// startup, answer queries (including a malformed line that must not
    /// kill the server), shut down cleanly, and remove the socket file.
    #[cfg(unix)]
    #[test]
    fn serve_answers_over_a_unix_socket() {
        use std::io::{BufRead, BufReader, Write};
        use std::os::unix::net::UnixStream;
        let c = write_temp(
            "t12.c",
            "int x; int *p; int *q; void main() { p = &x; q = p; }",
        );
        let sock = std::env::temp_dir()
            .join("ant-cli-tests")
            .join("t12.sock")
            .to_string_lossy()
            .into_owned();
        let args = s(&[&c, "--socket", &sock, "--record"]);
        let server = std::thread::spawn(move || serve(&args));
        let mut conn = None;
        for _ in 0..200 {
            match UnixStream::connect(&sock) {
                Ok(c) => {
                    conn = Some(c);
                    break;
                }
                Err(_) => std::thread::sleep(std::time::Duration::from_millis(10)),
            }
        }
        let conn = conn.expect("server came up");
        // The socket is private to the serving user.
        {
            use std::os::unix::fs::PermissionsExt;
            let mode = std::fs::metadata(&sock).unwrap().permissions().mode();
            assert_eq!(mode & 0o777, 0o600, "socket must be 0600");
        }
        let mut reader = BufReader::new(conn.try_clone().unwrap());
        let mut writer = conn;
        // Invalid UTF-8 must be answered with an envelope, not kill the
        // connection.
        writer.write_all(b"\xff\xfe{not utf8}\n").unwrap();
        let mut reply = String::new();
        reader.read_line(&mut reply).unwrap();
        assert!(
            reply.contains(r#""error":"malformed_request""#) && reply.contains("UTF-8"),
            "got {reply}"
        );
        let mut ask = |line: &str| {
            writeln!(writer, "{line}").unwrap();
            let mut reply = String::new();
            reader.read_line(&mut reply).unwrap();
            reply
        };
        let reply = ask(r#"{"op":"points_to","var":"q","id":1}"#);
        assert!(reply.contains(r#""ok":true"#), "got {reply}");
        assert!(reply.contains(r#""pts":["x"]"#), "got {reply}");
        let reply = ask("not json at all");
        assert!(
            reply.contains(r#""error":"malformed_request""#),
            "got {reply}"
        );
        // A request line over the transport cap is rejected with an
        // envelope and the connection keeps serving.
        let big = format!(r#"{{"op":"stats","pad":"{}"}}"#, "y".repeat(2 << 20));
        let reply = ask(&big);
        assert!(
            reply.contains(r#""error":"malformed_request""#) && reply.contains("exceeds"),
            "got {reply}"
        );
        let reply = ask(r#"{"op":"may_alias","a":"p","b":"q"}"#);
        assert!(reply.contains(r#""alias":true"#), "got {reply}");
        let reply = ask(r#"{"op":"explain","var":"q","loc":"x"}"#);
        assert!(reply.contains(r#""ok":true"#), "got {reply}");
        // The incremental `add` op: this session's config (recorded, OVS in
        // the pipeline) is not resumable, so the union is re-solved from
        // scratch — explicitly reported via `resumed: false`.
        let reply = ask(r#"{"op":"add","text":"w = q\n"}"#);
        assert!(reply.contains(r#""ok":true"#), "got {reply}");
        assert!(reply.contains(r#""resumed":false"#), "got {reply}");
        let reply = ask(r#"{"op":"points_to","var":"w"}"#);
        assert!(reply.contains(r#""pts":["x"]"#), "got {reply}");
        let reply = ask(r#"{"op":"stats"}"#);
        assert!(reply.contains(r#""cache_misses""#), "got {reply}");
        let reply = ask(r#"{"op":"shutdown"}"#);
        assert!(reply.contains(r#""ok":true"#), "got {reply}");
        server.join().unwrap().unwrap();
        assert!(
            !std::path::Path::new(&sock).exists(),
            "socket file removed on shutdown"
        );
        assert!(
            !std::path::Path::new(&format!("{sock}.lock")).exists(),
            "lockfile removed on shutdown"
        );
    }

    /// A concurrently starting server holds `<path>.lock`; the second
    /// server must refuse to unlink the socket out from under it.
    #[cfg(unix)]
    #[test]
    fn serve_socket_refuses_when_lockfile_held() {
        let sock = std::env::temp_dir()
            .join("ant-cli-tests")
            .join("t16.sock")
            .to_string_lossy()
            .into_owned();
        std::fs::create_dir_all(std::env::temp_dir().join("ant-cli-tests")).unwrap();
        let lock = format!("{sock}.lock");
        std::fs::write(&lock, "").unwrap();
        let err = serve(&s(&["--socket", &sock])).unwrap_err();
        assert!(err.message().contains("lockfile"), "{err}");
        std::fs::remove_file(&lock).unwrap();
    }

    /// `ant solve --base/--add` warm-starts the retained state: the trace
    /// carries a `resume` event, two `solver_start` records (base solve +
    /// resumed solve), and the printed solution is the union's. A
    /// non-resumable algorithm runs the same lane without any resume event.
    #[test]
    fn incremental_solve_resumes_and_traces() {
        use ant_core::obs::parse_object;
        let base = write_temp("t14a.consts", "p = &x\nq = p\n");
        let delta = write_temp("t14b.consts", "r = q\nt = &r\n");
        let trace = write_temp("t14.jsonl", "");
        solve(&s(&[
            "--base",
            &base,
            "--add",
            &delta,
            "--algorithm",
            "lcd",
            "--trace-out",
            &trace,
            "--stats",
        ]))
        .unwrap();
        let text = std::fs::read_to_string(&trace).unwrap();
        let events: Vec<String> = text
            .lines()
            .map(|l| {
                parse_object(l).unwrap()["event"]
                    .as_str()
                    .unwrap()
                    .to_owned()
            })
            .collect();
        assert!(
            events.iter().any(|e| e == "resume"),
            "trace carries the resume event: {events:?}"
        );
        assert_eq!(events.iter().filter(|e| *e == "solver_start").count(), 2);
        // Chained --add flags keep resuming off the latest union.
        let more = write_temp("t14c.consts", "u = t\n");
        solve(&s(&["--base", &base, "--add", &delta, "--add", &more])).unwrap();
        // A non-resumable algorithm (HT) re-solves from scratch: no resume
        // event, but the lane still completes.
        let trace2 = write_temp("t14d.jsonl", "");
        solve(&s(&[
            "--base",
            &base,
            "--add",
            &delta,
            "--algorithm",
            "ht",
            "--trace-out",
            &trace2,
        ]))
        .unwrap();
        let text = std::fs::read_to_string(&trace2).unwrap();
        assert!(!text.contains("\"event\":\"resume\""), "HT never resumes");
        // An explicit non-delta-stable pipeline also falls back cleanly.
        solve(&s(&[
            "--base",
            &base,
            "--add",
            &delta,
            "--algorithm",
            "lcd",
            "--passes",
            "normalize,ovs",
        ]))
        .unwrap();
    }

    #[test]
    fn incremental_solve_rejects_bad_invocations() {
        let base = write_temp("t15a.consts", "p = &x\n");
        let delta = write_temp("t15b.consts", "q = p\n");
        let err = solve(&s(&["--add", &delta])).unwrap_err();
        assert!(err.message().contains("--add needs --base"));
        let err = solve(&s(&["--base", &base])).unwrap_err();
        assert!(err.message().contains("at least one --add"));
        let err = solve(&s(&["x.c", "--base", &base, "--add", &delta])).unwrap_err();
        assert!(err.message().contains("replace the positional"));
        let err = solve(&s(&["--base", &base, "--add", &delta, "--record"])).unwrap_err();
        assert!(err.message().contains("--record is not supported"));
        // A delta that conflicts with the base is a typed parse error.
        let clash = write_temp("t15c.consts", "fun p 4\n");
        let err = solve(&s(&["--base", &base, "--add", &clash])).unwrap_err();
        assert_eq!(err.kind(), ant_common::AntErrorKind::Parse);
        assert!(err.message().contains("does not compose"));
    }

    #[test]
    fn threads_flag_parses_into_the_solver_config() {
        let opts = Opts::parse(&s(&["f.c", "--threads", "4", "--pts", "shared"])).unwrap();
        let cfg = CliConfig::from_opts(&opts).unwrap();
        assert_eq!(cfg.solver.threads, 4);
        assert_eq!(cfg.pts, PtsKind::Shared);
        let opts = Opts::parse(&s(&["f.c"])).unwrap();
        let cfg = CliConfig::from_opts(&opts).unwrap();
        assert_eq!(cfg.pts, PtsKind::Bitmap);
        assert!(cfg.solver.threads >= 1);
        assert_eq!(cfg.solver.prop, PropMode::Full);
        let opts = Opts::parse(&s(&["f.c", "--prop", "diff"])).unwrap();
        let cfg = CliConfig::from_opts(&opts).unwrap();
        assert_eq!(cfg.solver.prop, PropMode::Diff);
    }

    #[test]
    fn passes_flag_parses_into_a_pipeline() {
        let opts = Opts::parse(&s(&["f.c", "--passes", "normalize,ovs,hcd"])).unwrap();
        let cfg = CliConfig::from_opts(&opts).unwrap();
        assert_eq!(cfg.passes.names(), vec!["normalize", "ovs", "hcd"]);

        // Default is the standard pipeline.
        let opts = Opts::parse(&s(&["f.c"])).unwrap();
        let cfg = CliConfig::from_opts(&opts).unwrap();
        assert_eq!(cfg.passes.names(), vec!["normalize", "ovs"]);

        // `--no-ovs` and `--passes none` both mean "no preprocessing".
        for args in [&["f.c", "--no-ovs"][..], &["f.c", "--passes", "none"][..]] {
            let opts = Opts::parse(&s(args)).unwrap();
            let cfg = CliConfig::from_opts(&opts).unwrap();
            assert!(cfg.passes.is_empty());
        }

        let opts = Opts::parse(&s(&["f.c", "--passes", "ovs", "--no-ovs"])).unwrap();
        let err = CliConfig::from_opts(&opts).unwrap_err();
        assert!(err.message().contains("mutually exclusive"));

        let opts = Opts::parse(&s(&["f.c", "--passes", "frobnicate"])).unwrap();
        let err = CliConfig::from_opts(&opts).unwrap_err();
        assert!(err.message().contains("frobnicate"));

        let opts = Opts::parse(&s(&["f.c", "--passes", "hcd,ovs"])).unwrap();
        let err = CliConfig::from_opts(&opts).unwrap_err();
        assert!(err.message().contains("hcd must be last"));
    }

    /// Every pass subset prints the same points-to sets, and traces carry
    /// one `pass_summary` record per pass run.
    #[test]
    fn pass_subsets_agree_and_trace_summaries() {
        use ant_core::obs::parse_object;
        let c = write_temp(
            "t9.c",
            "int x; int *p; int *q; int **a;\n\
             void main() { a = &p; p = &x; q = *a; *a = q; }",
        );
        for spec in ["none", "normalize", "ovs", "normalize,ovs,hcd"] {
            solve(&s(&[&c, "--passes", spec])).unwrap();
        }
        let trace = write_temp("t9.jsonl", "");
        solve(&s(&[
            &c,
            "--passes",
            "normalize,ovs,hcd",
            "--trace-out",
            &trace,
        ]))
        .unwrap();
        let text = std::fs::read_to_string(&trace).unwrap();
        let passes: Vec<String> = text
            .lines()
            .map(|l| parse_object(l).unwrap())
            .filter(|r| r["event"].as_str() == Some("pass_summary"))
            .map(|r| r["pass"].as_str().unwrap().to_owned())
            .collect();
        assert_eq!(passes, vec!["normalize", "ovs", "hcd"]);
    }

    /// `--threads 4` prints the same points-to sets as `--threads 1` — the
    /// BSP engine is user-invisible apart from speed.
    #[test]
    fn parallel_solve_matches_sequential_output() {
        let c = write_temp(
            "t8.c",
            "int x; int *p; int *q; int **a;\n\
             void main() { a = &p; p = &x; q = *a; *a = q; }",
        );
        for alg in ["lcd", "lcd-hcd", "pkh"] {
            solve(&s(&[&c, "--algorithm", alg, "--threads", "1"])).unwrap();
            solve(&s(&[&c, "--algorithm", alg, "--threads", "4"])).unwrap();
        }
    }
}
