//! The precision trade-off that motivates the paper (§1, §6): Steensgaard's
//! near-linear unification analysis versus inclusion-based analysis, on the
//! synthetic suite.
//!
//! ```text
//! cargo run --release --example precision [scale]
//! ```

use ant_grasshopper::frontend::suite;
use ant_grasshopper::solver::steensgaard;
use ant_grasshopper::{solve_dyn, Algorithm, PtsKind, SolverConfig};

fn main() {
    let scale: f64 = std::env::args()
        .nth(1)
        .and_then(|s| s.parse().ok())
        .unwrap_or(0.01);
    println!(
        "{:<12} {:>14} {:>14} {:>8} {:>12} {:>12}",
        "benchmark", "andersen |pts|", "steens |pts|", "blowup", "andersen ms", "steens ms"
    );
    for bench in suite::suite(scale) {
        let program = ant_grasshopper::PassPipeline::standard()
            .run(&bench.program())
            .program;
        let exact = solve_dyn(
            &program,
            &SolverConfig::new(Algorithm::LcdHcd),
            PtsKind::Bitmap,
        );
        let coarse = steensgaard(&program);
        assert!(
            coarse.solution.subsumes(&exact.solution),
            "unification must over-approximate inclusion"
        );
        let a = exact.solution.total_pts_size();
        let s = coarse.solution.total_pts_size();
        println!(
            "{:<12} {:>14} {:>14} {:>7.1}x {:>12.2} {:>12.2}",
            bench.name(),
            a,
            s,
            s as f64 / a.max(1) as f64,
            exact.stats.solve_time.as_secs_f64() * 1000.0,
            coarse.stats.solve_time.as_secs_f64() * 1000.0,
        );
    }
    println!(
        "\nSteensgaard is fast but conflates everything an assignment ever linked;\n\
         the paper's point is that LCD+HCD makes the *precise* analysis affordable."
    );
}
