//! Call-graph construction — the classic client of pointer analysis: the
//! targets of every indirect call are read off the function pointer's
//! points-to set.
//!
//! ```text
//! cargo run --example callgraph
//! ```

use ant_grasshopper::{Algorithm, Analysis, ConstraintKind, VarId};

const SOURCE: &str = r#"
int *alloc_small(int n)  { return malloc(n); }
int *alloc_big(int n)    { return malloc(n * 4096); }
int *alloc_zero(int n)   { return calloc(n, 1); }

int *(*allocator)(int);
int *(*table[3])(int);

void pick(int mode) {
    if (mode == 0) allocator = alloc_small;
    else allocator = alloc_big;
    table[0] = alloc_small;
    table[1] = alloc_zero;
}

int *use(int n) {
    int *a = allocator(n);      /* indirect: small or big */
    int *b = table[2](n);       /* indirect through the table */
    return a ? a : b;
}
"#;

fn main() {
    let analysis = Analysis::builder()
        .algorithm(Algorithm::LcdHcd)
        .analyze_c(SOURCE)
        .expect("parses");
    let program = &analysis.program;

    // Indirect call sites are exactly the offset-1 load constraints (the
    // return-slot read through a function pointer).
    println!("resolved indirect calls:\n");
    for c in program.constraints() {
        if c.kind == ConstraintKind::Load && c.offset == 1 {
            let targets: Vec<&str> = analysis
                .solution
                .points_to(c.rhs)
                .iter()
                .map(|&t| program.var_name(VarId::from_u32(t)))
                .filter(|n| program.offset_limit(program.var_by_name(n).unwrap()) > 1)
                .collect();
            println!(
                "  call through `{}` may invoke: {{{}}}",
                program.var_name(c.rhs),
                targets.join(", ")
            );
        }
    }

    let allocator = program.var_by_name("allocator").unwrap();
    let small = program.var_by_name("alloc_small").unwrap();
    let zero = program.var_by_name("alloc_zero").unwrap();
    assert!(analysis.solution.may_point_to(allocator, small));
    assert!(
        !analysis.solution.may_point_to(allocator, zero),
        "alloc_zero is only ever stored in the table"
    );
    println!("\n`allocator` can reach alloc_small/alloc_big but never alloc_zero ✓");
}
