//! Analyze a mini-C source file or a `.consts` constraint file from the
//! command line and dump the points-to solution.
//!
//! ```text
//! cargo run --example analyze_file -- path/to/file.c [algorithm]
//! echo 'p = &x
//! q = p' > /tmp/t.consts && cargo run --example analyze_file -- /tmp/t.consts
//! ```

use ant_grasshopper::{parse_program, Algorithm, Analysis, Program};
use std::process::ExitCode;

fn main() -> ExitCode {
    let mut args = std::env::args().skip(1);
    let Some(path) = args.next() else {
        eprintln!("usage: analyze_file <file.c | file.consts> [algorithm]");
        return ExitCode::FAILURE;
    };
    let algorithm = match args.next() {
        None => Algorithm::LcdHcd,
        Some(name) => match Algorithm::parse(&name) {
            Some(a) => a,
            None => {
                eprintln!("unknown algorithm `{name}` (try HT, PKH, BLQ, LCD, HCD, LCD+HCD)");
                return ExitCode::FAILURE;
            }
        },
    };
    let text = match std::fs::read_to_string(&path) {
        Ok(t) => t,
        Err(e) => {
            eprintln!("cannot read {path}: {e}");
            return ExitCode::FAILURE;
        }
    };

    let program: Program = if path.ends_with(".c") {
        match ant_grasshopper::compile_c(&text) {
            Ok(out) => {
                for w in &out.warnings {
                    eprintln!("warning: {w}");
                }
                out.program
            }
            Err(e) => {
                eprintln!("{path}: {e}");
                return ExitCode::FAILURE;
            }
        }
    } else {
        match parse_program(&text) {
            Ok(p) => p,
            Err(e) => {
                eprintln!("{path}: {e}");
                return ExitCode::FAILURE;
            }
        }
    };

    let analysis = Analysis::builder().algorithm(algorithm).analyze(&program);
    println!(
        "# {} vars, {} constraints ({:.0}% removed offline), solved by {} in {:.3}ms",
        program.num_vars(),
        program.stats().total(),
        analysis.reduction_percent(),
        algorithm,
        analysis.stats.solve_time.as_secs_f64() * 1000.0
    );
    for v in program.vars() {
        let name = program.var_name(v);
        let names = analysis
            .solution
            .points_to_names(&program, name)
            .expect("every program variable resolves by name");
        if !names.is_empty() {
            println!("pts({name}) = {{{}}}", names.join(", "));
        }
    }
    ExitCode::SUCCESS
}
