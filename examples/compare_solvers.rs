//! Runs all ten algorithms on one synthetic benchmark, verifies they all
//! produce the identical points-to solution, and prints the paper's §5.3
//! counters side by side.
//!
//! ```text
//! cargo run --release --example compare_solvers [benchmark] [scale]
//! ```

use ant_grasshopper::frontend::suite;
use ant_grasshopper::{solve_prepared, Algorithm, PassPipeline, PtsKind, SolverConfig};

fn main() {
    let which = std::env::args()
        .nth(1)
        .unwrap_or_else(|| "emacs".to_owned());
    let scale: f64 = std::env::args()
        .nth(2)
        .and_then(|s| s.parse().ok())
        .unwrap_or(0.02);
    let bench = suite::benchmark(&which, scale).expect("benchmark name");
    let program = bench.program();
    let prepared = PassPipeline::standard().run(&program);
    println!(
        "benchmark `{}` at scale {scale}: {} constraints, {} after offline passes \
         ({:.0}% reduction)\n",
        which,
        prepared.constraints_before(),
        prepared.constraints_after(),
        prepared.reduction_percent(),
    );

    println!(
        "{:<8} {:>9} {:>10} {:>10} {:>12} {:>10}",
        "algo", "time(ms)", "collapsed", "searched", "propagations", "mem(MiB)"
    );
    let mut reference = None;
    for alg in Algorithm::ALL {
        let out = solve_prepared(&prepared, &SolverConfig::new(alg), PtsKind::Bitmap);
        println!(
            "{:<8} {:>9.2} {:>10} {:>10} {:>12} {:>10.1}",
            alg.name(),
            out.stats.solve_time.as_secs_f64() * 1000.0,
            out.stats.nodes_collapsed,
            out.stats.nodes_searched,
            out.stats.propagations,
            out.stats.total_mib(),
        );
        let solution = out.solution;
        match &reference {
            None => reference = Some(solution),
            Some(r) => assert!(
                solution.equiv(r),
                "{alg} disagrees with the reference solution!"
            ),
        }
    }
    println!(
        "\nall {} algorithms computed the identical solution ✓",
        Algorithm::ALL.len()
    );
}
