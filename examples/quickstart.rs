//! Quickstart: analyze a small C program with the paper's fastest
//! configuration (LCD+HCD) and query the points-to solution.
//!
//! ```text
//! cargo run --example quickstart
//! ```

use ant_grasshopper::{Algorithm, Analysis, SolverConfig};

const SOURCE: &str = r#"
int x;
int y;
int *p;
int *q;
int **pp;

int *select(int *a, int *b) {
    if (x) return a;
    return b;
}

void main() {
    p = &x;
    q = select(p, &y);
    pp = &q;
    **pp = y;
}
"#;

fn main() {
    let config = SolverConfig::new(Algorithm::LcdHcd);
    let analysis = Analysis::builder()
        .config(config)
        .analyze_c(SOURCE)
        .expect("source parses");

    println!(
        "analyzed with {} in {:.3} ms\n",
        config.algorithm,
        analysis.stats.solve_time.as_secs_f64() * 1000.0
    );

    for name in ["p", "q", "pp", "select#1"] {
        let pts = analysis
            .solution
            .points_to_names(&analysis.program, name)
            .expect("variable exists");
        println!("pts({name:9}) = {{{}}}", pts.join(", "));
    }

    let alias = analysis
        .solution
        .may_alias_names(&analysis.program, "p", "q")
        .expect("variables exist");
    println!("\nmay_alias(p, q) = {alias}");
}
