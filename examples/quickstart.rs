//! Quickstart: analyze a small C program with the paper's fastest
//! configuration (LCD+HCD) and query the points-to solution.
//!
//! ```text
//! cargo run --example quickstart
//! ```

use ant_grasshopper::{Algorithm, Analysis, SolverConfig};

const SOURCE: &str = r#"
int x;
int y;
int *p;
int *q;
int **pp;

int *select(int *a, int *b) {
    if (x) return a;
    return b;
}

void main() {
    p = &x;
    q = select(p, &y);
    pp = &q;
    **pp = y;
}
"#;

fn main() {
    let config = SolverConfig::new(Algorithm::LcdHcd);
    let analysis = Analysis::builder()
        .config(config)
        .analyze_c(SOURCE)
        .expect("source parses");

    println!(
        "analyzed with {} in {:.3} ms\n",
        config.algorithm,
        analysis.stats.solve_time.as_secs_f64() * 1000.0
    );

    for name in ["p", "q", "pp", "select#1"] {
        let v = analysis.program.var_by_name(name).expect("variable exists");
        let pts: Vec<&str> = analysis
            .solution
            .points_to(v)
            .iter()
            .map(|&l| {
                analysis
                    .program
                    .var_name(ant_grasshopper::VarId::from_u32(l))
            })
            .collect();
        println!("pts({name:9}) = {{{}}}", pts.join(", "));
    }

    let p = analysis.program.var_by_name("p").unwrap();
    let q = analysis.program.var_by_name("q").unwrap();
    println!("\nmay_alias(p, q) = {}", analysis.solution.may_alias(p, q));
}
