#!/usr/bin/env bash
# Local CI: formatting, lints, and the full test suite.
# Usage: scripts/check.sh [--bench]
#   --bench  additionally run the representation benchmark (scripts/bench.sh)
set -euo pipefail
cd "$(dirname "$0")/.."

echo "==> cargo fmt --check"
cargo fmt --check

echo "==> cargo clippy --workspace --all-targets -- -D warnings"
cargo clippy --workspace --all-targets -- -D warnings

echo "==> cargo test --workspace -q"
cargo test --workspace -q

echo "==> cross-representation differential test"
cargo test --test pts_repr_differential -q

echo "==> pass-pipeline differential test"
cargo test --test pipeline_differential -q

echo "==> propagation-mode differential test (full vs diff)"
cargo test --test prop_differential -q

echo "==> incremental resume differential test (warm start vs scratch)"
cargo test --test incremental_differential -q

echo "==> full test suite under the BSP engine (ANT_THREADS=4)"
ANT_THREADS=4 cargo test --workspace -q

echo "==> provenance differential test"
cargo test --test provenance_differential -q

echo "==> session-vs-one-shot differential test"
cargo test --test session_differential -q

echo "==> ant serve smoke test (real child process over stdin/stdout)"
cargo build --release -q -p ant-cli
serve_out="$(printf '%s\n' \
  '{"op":"points_to","var":"str_hash","id":1}' \
  '{this is not json' \
  '{"op":"add","text":"smoke_new = str_hash\n"}' \
  '{"op":"shutdown"}' \
  | target/release/ant serve testdata/hashtable.c)"
echo "$serve_out" | grep -q '"ok":true.*"op":"points_to"' \
  || { echo "serve smoke: missing points_to answer"; echo "$serve_out"; exit 1; }
echo "$serve_out" | grep -q '"error":"malformed_request"' \
  || { echo "serve smoke: malformed line not typed"; echo "$serve_out"; exit 1; }
echo "$serve_out" | grep -q '"ok":true.*"op":"add"' \
  || { echo "serve smoke: incremental add not answered"; echo "$serve_out"; exit 1; }

echo "==> fuzz smoke (fixed seed, FUZZ_ITERS=${FUZZ_ITERS:-500} programs + request streams)"
# Deterministic structure-aware fuzzing of parse/solve/serve (DESIGN.md §15).
# Exit 1 means the harness pinned a *new* reproducer under testdata/fuzz/ —
# inspect it, fix the crash/mismatch, and commit the entry with the fix.
FUZZ_ITERS="${FUZZ_ITERS:-500}" \
  cargo run --release -q -p ant-bench --bin fuzz_harness -- --seed 2599 \
  || { echo "fuzz smoke: new findings pinned in testdata/fuzz/ (see above)"; exit 1; }

echo "==> fuzz regression corpus replay"
cargo test --release --test fuzz_regressions -q

echo "==> provenance-overhead gate (recorder-off within 2% of the seed path)"
ANT_SCALE="${ANT_GATE_SCALE:-0.01}" ANT_BENCH_REPEATS="${ANT_GATE_REPEATS:-7}" \
  cargo run --release -q -p ant-bench --bin obs_bench -- --gate

if [[ "${1:-}" == "--bench" ]]; then
  echo "==> scripts/bench.sh"
  scripts/bench.sh
fi

echo "All checks passed."
