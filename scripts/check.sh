#!/usr/bin/env bash
# Local CI: formatting, lints, and the full test suite.
# Usage: scripts/check.sh [--bench]
#   --bench  additionally run the representation benchmark (scripts/bench.sh)
set -euo pipefail
cd "$(dirname "$0")/.."

echo "==> cargo fmt --check"
cargo fmt --check

echo "==> cargo clippy --workspace --all-targets -- -D warnings"
cargo clippy --workspace --all-targets -- -D warnings

echo "==> cargo test --workspace -q"
cargo test --workspace -q

echo "==> cross-representation differential test"
cargo test --test pts_repr_differential -q

echo "==> pass-pipeline differential test"
cargo test --test pipeline_differential -q

echo "==> propagation-mode differential test (full vs diff)"
cargo test --test prop_differential -q

echo "==> full test suite under the BSP engine (ANT_THREADS=4)"
ANT_THREADS=4 cargo test --workspace -q

echo "==> provenance differential test"
cargo test --test provenance_differential -q

echo "==> provenance-overhead gate (recorder-off within 2% of the seed path)"
ANT_SCALE="${ANT_GATE_SCALE:-0.01}" ANT_BENCH_REPEATS="${ANT_GATE_REPEATS:-7}" \
  cargo run --release -q -p ant-bench --bin obs_bench -- --gate

if [[ "${1:-}" == "--bench" ]]; then
  echo "==> scripts/bench.sh"
  scripts/bench.sh
fi

echo "All checks passed."
