#!/usr/bin/env bash
# Representation benchmark: wall time + pts_bytes per solver × repr over
# the bundled suite, interleaved best-of-20, written to BENCH_pts.json.
# Usage: scripts/bench.sh            (honours ANT_SCALE, ANT_BENCH_REPEATS)
set -euo pipefail
cd "$(dirname "$0")/.."

cargo run --release -p ant-bench --bin pts_bench
