#!/usr/bin/env bash
# Benchmarks:
#   pts_bench  — wall time + pts_bytes per solver × repr, BENCH_pts.json
#   par_bench  — BSP scaling: threads {1,2,4,8} × solver × repr, BENCH_par.json
#   pass_bench — offline pass subsets vs the paper's 60-77% band, BENCH_passes.json
# Usage: scripts/bench.sh            (honours ANT_SCALE, ANT_BENCH_REPEATS)
set -euo pipefail
cd "$(dirname "$0")/.."

cargo run --release -p ant-bench --bin pts_bench
cargo run --release -p ant-bench --bin par_bench
cargo run --release -p ant-bench --bin pass_bench
