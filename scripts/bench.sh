#!/usr/bin/env bash
# Benchmarks — every BENCH_*.json uses the stable schema of
# ant_bench::schema: one JSON object per (benchmark, config) cell with
# `name`/`config`/`median`/`best` keys, so files are comparable across PRs.
#   pts_bench  — wall time + pts_bytes per solver × repr, BENCH_pts.json
#   par_bench  — BSP scaling: threads {1,2,4,8} × solver × repr, BENCH_par.json
#   pass_bench — offline pass subsets vs the paper's 60-77% band, BENCH_passes.json
#   obs_bench  — provenance recorder overhead (seed / off / on), BENCH_obs.json
#   prop_bench — full vs diff propagation across the six workloads, BENCH_prop.json
#   incr_bench — warm-start resume vs scratch at 1/5/20% deltas, BENCH_incr.json
#   serve_bench — session query p50/p99 + qps at fan-out 1 and 4, BENCH_serve.json
# Every produced file is then validated against the schema by schema_check.
# Usage: scripts/bench.sh            (honours ANT_SCALE, ANT_BENCH_REPEATS)
set -euo pipefail
cd "$(dirname "$0")/.."

cargo run --release -p ant-bench --bin pts_bench
cargo run --release -p ant-bench --bin par_bench
cargo run --release -p ant-bench --bin pass_bench
cargo run --release -p ant-bench --bin obs_bench
cargo run --release -p ant-bench --bin prop_bench
cargo run --release -p ant-bench --bin incr_bench
cargo run --release -p ant-bench --bin serve_bench

cargo run --release -p ant-bench --bin schema_check
