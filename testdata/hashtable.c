/* A separate-chaining hash table with user-supplied hash/eq callbacks. */

struct entry { struct entry *next; char *key; int *value; };
struct table {
    struct entry *buckets[16];
    int (*hash)(char *);
    int (*eq)(char *, char *);
};

int str_hash(char *s) { return *s; }
int str_eq(char *a, char *b) { return strcmp(a, b); }

struct table *table_new() {
    struct table *t = malloc(128);
    t->hash = str_hash;
    t->eq = str_eq;
    return t;
}

void table_put(struct table *t, char *key, int *value) {
    int h = t->hash(key);
    struct entry *e = malloc(24);
    e->key = key;
    e->value = value;
    e->next = t->buckets[h];
    t->buckets[h] = e;
}

int *table_get(struct table *t, char *key) {
    int h = t->hash(key);
    struct entry *e;
    for (e = t->buckets[h]; e; e = e->next) {
        if (t->eq(e->key, key)) {
            return e->value;
        }
    }
    return 0;
}

int answer;

int main() {
    struct table *t = table_new();
    table_put(t, "answer", &answer);
    int *back = table_get(t, "answer");
    return *back;
}
