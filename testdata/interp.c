/* A tiny stack-based interpreter: op dispatch through a function-pointer
 * table, a heap-allocated environment, and string interning — the kind of
 * code pointer analyses are run on. */

struct value { int tag; int *payload; };
struct env { struct env *parent; struct value *slot; };

struct value stack[64];
int sp;
struct env *global_env;

int *heap_int(int n) {
    int *p = malloc(4);
    *p = n;
    return p;
}

void push(struct value v) { stack[sp] = v; sp = sp + 1; }
struct value pop() { sp = sp - 1; return stack[sp]; }

void op_add() {
    struct value a = pop();
    struct value b = pop();
    struct value r;
    r.payload = heap_int(*a.payload + *b.payload);
    push(r);
}

void op_dup() {
    struct value a = pop();
    push(a);
    push(a);
}

void op_store() {
    struct value v = pop();
    struct env *e = global_env;
    e->slot = &stack[sp];   /* alias into the stack */
    *e->slot = v;
}

void (*dispatch[3])(void);

void init() {
    dispatch[0] = op_add;
    dispatch[1] = op_dup;
    dispatch[2] = op_store;
    global_env = malloc(16);
    global_env->parent = global_env;  /* cyclic env chain */
}

void run(int *code, int len) {
    int i;
    for (i = 0; i < len; i++) {
        dispatch[code[i]]();
    }
}

int main() {
    int prog[3];
    init();
    run(prog, 3);
    return 0;
}
