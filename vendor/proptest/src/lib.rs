//! Offline stand-in for the `proptest` crate.
//!
//! The build environment has no crates.io access, so the workspace patches
//! `proptest` to this in-tree implementation (see `[patch.crates-io]` in
//! the root `Cargo.toml`). It supports the subset of the real API the
//! workspace's property tests use:
//!
//! * the [`proptest!`] macro (including `#![proptest_config(..)]`),
//! * [`Strategy`] with `prop_map`, `prop_recursive` and `boxed`,
//! * integer range strategies, tuples (arity 2–4), [`Just`],
//!   [`prop_oneof!`], `prop::collection::vec`, and simple
//!   character-class string patterns like `"[ -~\n]{0,200}"`,
//! * `prop_assert!` / `prop_assert_eq!` and [`ProptestConfig`].
//!
//! Differences from the real crate: cases are generated from a fixed
//! deterministic seed (override with `PROPTEST_SEED`), there is **no
//! shrinking**, and failure persistence files are ignored. Failures print
//! the generated inputs via `Debug` so they can be turned into regular
//! regression tests by hand.

#![forbid(unsafe_code)]

use std::fmt;
use std::ops::Range;
use std::rc::Rc;

// ---------------------------------------------------------------------------
// RNG (xoshiro256**, same construction as the vendored `rand` stub)
// ---------------------------------------------------------------------------

/// Deterministic RNG handed to strategies.
#[derive(Clone, Debug)]
pub struct TestRng {
    s: [u64; 4],
}

impl TestRng {
    /// Creates a generator from a 64-bit seed.
    pub fn seed_from_u64(seed: u64) -> Self {
        let mut x = seed;
        let mut next = || {
            x = x.wrapping_add(0x9E37_79B9_7F4A_7C15);
            let mut z = x;
            z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
            z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
            z ^ (z >> 31)
        };
        TestRng {
            s: [next(), next(), next(), next()],
        }
    }

    /// The next 64 uniformly distributed bits.
    pub fn next_u64(&mut self) -> u64 {
        let s = &mut self.s;
        let result = s[1].wrapping_mul(5).rotate_left(7).wrapping_mul(9);
        let t = s[1] << 17;
        s[2] ^= s[0];
        s[3] ^= s[1];
        s[1] ^= s[2];
        s[0] ^= s[3];
        s[2] ^= t;
        s[3] = s[3].rotate_left(45);
        result
    }

    /// Uniform draw from `[0, bound)`; `bound` must be non-zero.
    pub fn below(&mut self, bound: u64) -> u64 {
        self.next_u64() % bound
    }
}

// ---------------------------------------------------------------------------
// Errors and configuration
// ---------------------------------------------------------------------------

/// Failure raised by `prop_assert!`-style macros inside a property body.
#[derive(Debug, Clone)]
pub struct TestCaseError(pub String);

impl TestCaseError {
    /// A failed-assertion error with the given message.
    pub fn fail(msg: impl Into<String>) -> Self {
        TestCaseError(msg.into())
    }
}

impl fmt::Display for TestCaseError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(&self.0)
    }
}

/// Runner configuration (only the case count is honoured).
#[derive(Clone, Debug)]
pub struct ProptestConfig {
    /// Number of cases to run per property.
    pub cases: u32,
}

impl ProptestConfig {
    /// Configuration running `cases` cases.
    pub fn with_cases(cases: u32) -> Self {
        ProptestConfig { cases }
    }
}

impl Default for ProptestConfig {
    fn default() -> Self {
        ProptestConfig { cases: 64 }
    }
}

/// Per-property driver: owns the RNG and the case budget.
pub struct TestRunner {
    rng: TestRng,
    cases: u32,
}

impl TestRunner {
    /// Creates a runner for one property. The seed is fixed (deterministic
    /// CI) unless `PROPTEST_SEED` is set.
    pub fn new(config: ProptestConfig, property_name: &str) -> Self {
        let base = std::env::var("PROPTEST_SEED")
            .ok()
            .and_then(|s| s.parse().ok())
            .unwrap_or(0x5EED_0BAD_CAFE_u64);
        // Mix in the property name so sibling properties see different data.
        let mut h = 0xcbf2_9ce4_8422_2325u64;
        for b in property_name.bytes() {
            h = (h ^ b as u64).wrapping_mul(0x100_0000_01b3);
        }
        TestRunner {
            rng: TestRng::seed_from_u64(base ^ h),
            cases: config.cases,
        }
    }

    /// Number of cases to run.
    pub fn cases(&self) -> u32 {
        self.cases
    }

    /// The RNG for the current case.
    pub fn rng(&mut self) -> &mut TestRng {
        &mut self.rng
    }
}

// ---------------------------------------------------------------------------
// Strategy
// ---------------------------------------------------------------------------

/// A generator of random values (the stand-in keeps generation only; the
/// real crate's value trees and shrinking are omitted).
pub trait Strategy {
    /// The type of generated values.
    type Value;

    /// Generates one value.
    fn generate(&self, rng: &mut TestRng) -> Self::Value;

    /// Maps generated values through `f`.
    fn prop_map<U, F>(self, f: F) -> Map<Self, F>
    where
        Self: Sized,
        F: Fn(Self::Value) -> U,
    {
        Map { inner: self, f }
    }

    /// Builds a recursive strategy: `recurse` receives the strategy for the
    /// smaller structure and returns the strategy for the larger one. The
    /// stand-in unrolls `depth` levels, always keeping the leaf in the mix
    /// so generation terminates.
    fn prop_recursive<R, F>(
        self,
        depth: u32,
        _desired_size: u32,
        _branch: u32,
        recurse: F,
    ) -> BoxedStrategy<Self::Value>
    where
        Self: Sized + 'static,
        Self::Value: 'static,
        R: Strategy<Value = Self::Value> + 'static,
        F: Fn(BoxedStrategy<Self::Value>) -> R,
    {
        let leaf = self.boxed();
        let mut cur = leaf.clone();
        for _ in 0..depth {
            let deeper = recurse(cur).boxed();
            let l = leaf.clone();
            cur = BoxedStrategy(Rc::new(move |rng: &mut TestRng| {
                // Bias toward recursion but keep leaves reachable at every
                // level, mirroring the real crate's size budgeting.
                if rng.below(4) == 0 {
                    l.generate(rng)
                } else {
                    deeper.generate(rng)
                }
            }));
        }
        cur
    }

    /// Type-erases the strategy.
    fn boxed(self) -> BoxedStrategy<Self::Value>
    where
        Self: Sized + 'static,
        Self::Value: 'static,
    {
        let inner = self;
        BoxedStrategy(Rc::new(move |rng: &mut TestRng| inner.generate(rng)))
    }
}

/// A reference-counted type-erased strategy (cloneable, as `prop_recursive`
/// closures require).
pub struct BoxedStrategy<T>(Rc<dyn Fn(&mut TestRng) -> T>);

impl<T> Clone for BoxedStrategy<T> {
    fn clone(&self) -> Self {
        BoxedStrategy(Rc::clone(&self.0))
    }
}

impl<T> Strategy for BoxedStrategy<T> {
    type Value = T;
    fn generate(&self, rng: &mut TestRng) -> T {
        (self.0)(rng)
    }
}

/// Always produces a clone of the given value.
#[derive(Clone, Debug)]
pub struct Just<T: Clone>(pub T);

impl<T: Clone> Strategy for Just<T> {
    type Value = T;
    fn generate(&self, _rng: &mut TestRng) -> T {
        self.0.clone()
    }
}

/// [`Strategy::prop_map`] adapter.
#[derive(Clone)]
pub struct Map<S, F> {
    inner: S,
    f: F,
}

impl<S, U, F> Strategy for Map<S, F>
where
    S: Strategy,
    F: Fn(S::Value) -> U,
{
    type Value = U;
    fn generate(&self, rng: &mut TestRng) -> U {
        (self.f)(self.inner.generate(rng))
    }
}

macro_rules! impl_range_strategy {
    ($($t:ty),*) => {$(
        impl Strategy for Range<$t> {
            type Value = $t;
            fn generate(&self, rng: &mut TestRng) -> $t {
                assert!(self.start < self.end, "cannot sample empty range");
                let span = (self.end - self.start) as u64;
                self.start + rng.below(span) as $t
            }
        }
    )*};
}

impl_range_strategy!(u8, u16, u32, u64, usize, i32, i64);

macro_rules! impl_tuple_strategy {
    ($(($($n:ident . $i:tt),+))*) => {$(
        impl<$($n: Strategy),+> Strategy for ($($n,)+) {
            type Value = ($($n::Value,)+);
            fn generate(&self, rng: &mut TestRng) -> Self::Value {
                ($(self.$i.generate(rng),)+)
            }
        }
    )*};
}

impl_tuple_strategy! {
    (A.0, B.1)
    (A.0, B.1, C.2)
    (A.0, B.1, C.2, D.3)
}

/// Uniform choice between type-erased alternatives (`prop_oneof!`).
pub struct OneOf<T>(pub Vec<BoxedStrategy<T>>);

impl<T> Clone for OneOf<T> {
    fn clone(&self) -> Self {
        OneOf(self.0.clone())
    }
}

impl<T> Strategy for OneOf<T> {
    type Value = T;
    fn generate(&self, rng: &mut TestRng) -> T {
        assert!(!self.0.is_empty(), "prop_oneof! needs at least one arm");
        let i = rng.below(self.0.len() as u64) as usize;
        self.0[i].generate(rng)
    }
}

// ---------------------------------------------------------------------------
// String patterns
// ---------------------------------------------------------------------------

/// `&str` strategies interpret the string as a simplified regex: a sequence
/// of literals and `[..]` character classes, each optionally followed by
/// `{min,max}`. This covers patterns like `"[ -~\n]{0,200}"`; anything
/// fancier panics with a clear message.
impl Strategy for &'static str {
    type Value = String;
    fn generate(&self, rng: &mut TestRng) -> String {
        generate_pattern(self, rng)
    }
}

fn generate_pattern(pattern: &str, rng: &mut TestRng) -> String {
    let chars: Vec<char> = pattern.chars().collect();
    let mut out = String::new();
    let mut i = 0;
    while i < chars.len() {
        let alphabet: Vec<char> = match chars[i] {
            '[' => {
                let close = chars[i..]
                    .iter()
                    .position(|&c| c == ']')
                    .unwrap_or_else(|| panic!("unclosed [ in pattern {pattern:?}"));
                let class = &chars[i + 1..i + close];
                i += close + 1;
                expand_class(class, pattern)
            }
            '\\' => {
                i += 2;
                vec![unescape(chars[i - 1], pattern)]
            }
            c => {
                i += 1;
                vec![c]
            }
        };
        let (min, max) = if chars.get(i) == Some(&'{') {
            let close = chars[i..]
                .iter()
                .position(|&c| c == '}')
                .unwrap_or_else(|| panic!("unclosed {{ in pattern {pattern:?}"));
            let body: String = chars[i + 1..i + close].iter().collect();
            i += close + 1;
            let (lo, hi) = body
                .split_once(',')
                .unwrap_or_else(|| panic!("need {{min,max}} in pattern {pattern:?}"));
            (
                lo.trim().parse::<usize>().expect("min count"),
                hi.trim().parse::<usize>().expect("max count"),
            )
        } else {
            (1, 1)
        };
        let n = min + rng.below((max - min + 1) as u64) as usize;
        for _ in 0..n {
            out.push(alphabet[rng.below(alphabet.len() as u64) as usize]);
        }
    }
    out
}

fn expand_class(class: &[char], pattern: &str) -> Vec<char> {
    let mut set = Vec::new();
    let mut j = 0;
    while j < class.len() {
        let c = if class[j] == '\\' {
            j += 1;
            unescape(class[j], pattern)
        } else {
            class[j]
        };
        if class.get(j + 1) == Some(&'-') && j + 2 < class.len() {
            let hi = if class[j + 2] == '\\' {
                j += 1;
                unescape(class[j + 2], pattern)
            } else {
                class[j + 2]
            };
            for v in (c as u32)..=(hi as u32) {
                if let Some(ch) = char::from_u32(v) {
                    set.push(ch);
                }
            }
            j += 3;
        } else {
            set.push(c);
            j += 1;
        }
    }
    assert!(
        !set.is_empty(),
        "empty character class in pattern {pattern:?}"
    );
    set
}

fn unescape(c: char, pattern: &str) -> char {
    match c {
        'n' => '\n',
        't' => '\t',
        'r' => '\r',
        '\\' | '-' | ']' | '[' | '{' | '}' => c,
        other => panic!("unsupported escape \\{other} in pattern {pattern:?}"),
    }
}

// ---------------------------------------------------------------------------
// Collections
// ---------------------------------------------------------------------------

/// `prop::collection` stand-in.
pub mod collection {
    use super::{Strategy, TestRng};
    use std::ops::Range;

    /// Strategy for `Vec`s whose length is drawn from `len` and whose
    /// elements come from `element`.
    pub fn vec<S: Strategy>(element: S, len: Range<usize>) -> VecStrategy<S> {
        VecStrategy { element, len }
    }

    /// See [`vec`].
    #[derive(Clone)]
    pub struct VecStrategy<S> {
        element: S,
        len: Range<usize>,
    }

    impl<S: Strategy> Strategy for VecStrategy<S> {
        type Value = Vec<S::Value>;
        fn generate(&self, rng: &mut TestRng) -> Vec<S::Value> {
            assert!(self.len.start < self.len.end, "empty length range");
            let span = (self.len.end - self.len.start) as u64;
            let n = self.len.start + rng.below(span) as usize;
            (0..n).map(|_| self.element.generate(rng)).collect()
        }
    }
}

/// The `proptest::prelude` stand-in: everything the tests import.
pub mod prelude {
    pub use crate::{
        prop_assert, prop_assert_eq, prop_assume, prop_oneof, proptest, BoxedStrategy, Just,
        ProptestConfig, Strategy, TestCaseError,
    };

    /// The `prop` alias module (`prop::collection::vec` etc.).
    pub mod prop {
        pub use crate::collection;
    }
}

// ---------------------------------------------------------------------------
// Macros
// ---------------------------------------------------------------------------

/// Defines property tests. Supports an optional leading
/// `#![proptest_config(expr)]` followed by `#[test] fn name(pat in strategy,
/// ...) { body }` items.
#[macro_export]
macro_rules! proptest {
    (#![proptest_config($cfg:expr)] $($rest:tt)*) => {
        $crate::proptest!(@cfg ($cfg) $($rest)*);
    };
    (@cfg ($cfg:expr) $( $(#[$meta:meta])* fn $name:ident ( $($pat:pat in $strat:expr),+ $(,)? ) $body:block )*) => {
        $(
            $(#[$meta])*
            fn $name() {
                let config: $crate::ProptestConfig = $cfg;
                let mut runner = $crate::TestRunner::new(config, stringify!($name));
                for case in 0..runner.cases() {
                    $(let $pat = $crate::Strategy::generate(&($strat), runner.rng());)+
                    let outcome: ::std::result::Result<(), $crate::TestCaseError> =
                        (|| { $body ::std::result::Result::Ok(()) })();
                    if let ::std::result::Result::Err(e) = outcome {
                        panic!("property {} failed at case {case}: {e}", stringify!($name));
                    }
                }
            }
        )*
    };
    ($($rest:tt)*) => {
        $crate::proptest!(@cfg ($crate::ProptestConfig::default()) $($rest)*);
    };
}

/// Fails the surrounding property when the condition is false.
#[macro_export]
macro_rules! prop_assert {
    ($cond:expr) => {
        $crate::prop_assert!($cond, "assertion failed: {}", stringify!($cond));
    };
    ($cond:expr, $($fmt:tt)*) => {
        if !$cond {
            return ::std::result::Result::Err($crate::TestCaseError::fail(format!($($fmt)*)));
        }
    };
}

/// Fails the surrounding property when the two values differ.
#[macro_export]
macro_rules! prop_assert_eq {
    ($left:expr, $right:expr $(,)?) => {{
        let (l, r) = (&$left, &$right);
        $crate::prop_assert!(
            l == r,
            "assertion failed: {} == {}\n  left: {:?}\n right: {:?}",
            stringify!($left),
            stringify!($right),
            l,
            r
        );
    }};
    ($left:expr, $right:expr, $($fmt:tt)+) => {{
        let (l, r) = (&$left, &$right);
        if l != r {
            return ::std::result::Result::Err($crate::TestCaseError::fail(format!(
                "{}\n  left: {:?}\n right: {:?}",
                format!($($fmt)+),
                l,
                r
            )));
        }
    }};
}

/// Skips the case when the assumption does not hold (the stand-in simply
/// returns success, which is a sound approximation without shrinking).
#[macro_export]
macro_rules! prop_assume {
    ($cond:expr) => {
        if !$cond {
            return ::std::result::Result::Ok(());
        }
    };
}

/// Uniform choice among strategies producing the same value type.
#[macro_export]
macro_rules! prop_oneof {
    ($($strat:expr),+ $(,)?) => {
        $crate::OneOf(vec![$($crate::Strategy::boxed($strat)),+])
    };
}

#[cfg(test)]
mod tests {
    use crate::prelude::*;
    use crate::TestRng;

    #[test]
    fn ranges_and_tuples() {
        let mut rng = TestRng::seed_from_u64(3);
        let s = (0u8..4, 10usize..20);
        for _ in 0..200 {
            let (a, b) = Strategy::generate(&s, &mut rng);
            assert!(a < 4 && (10..20).contains(&b));
        }
    }

    #[test]
    fn oneof_and_vec() {
        let mut rng = TestRng::seed_from_u64(5);
        let s = prop::collection::vec(prop_oneof![0u32..10, 100u32..110], 3..8);
        for _ in 0..100 {
            let v = Strategy::generate(&s, &mut rng);
            assert!((3..8).contains(&v.len()));
            assert!(v.iter().all(|&x| x < 10 || (100..110).contains(&x)));
        }
    }

    #[test]
    fn string_pattern_char_class() {
        let mut rng = TestRng::seed_from_u64(8);
        for _ in 0..100 {
            let s = Strategy::generate(&"[ -~\n]{0,200}", &mut rng);
            assert!(s.chars().count() <= 200);
            assert!(s.chars().all(|c| c == '\n' || (' '..='~').contains(&c)));
        }
    }

    #[test]
    fn recursive_terminates() {
        #[derive(Debug)]
        enum T {
            #[allow(dead_code)]
            Leaf(u32),
            Node(Box<T>, Box<T>),
        }
        fn depth(t: &T) -> u32 {
            match t {
                T::Leaf(_) => 0,
                T::Node(a, b) => 1 + depth(a).max(depth(b)),
            }
        }
        let leaf = (0u32..6).prop_map(T::Leaf);
        let s = leaf.prop_recursive(5, 64, 2, |inner| {
            (inner.clone(), inner).prop_map(|(a, b)| T::Node(Box::new(a), Box::new(b)))
        });
        let mut rng = TestRng::seed_from_u64(11);
        let mut max_seen = 0;
        for _ in 0..200 {
            max_seen = max_seen.max(depth(&Strategy::generate(&s, &mut rng)));
        }
        assert!(max_seen >= 1, "recursion must actually nest");
        assert!(max_seen <= 5, "recursion must respect the depth bound");
    }

    proptest! {
        #[test]
        fn the_macro_itself_works(x in 0u32..50, (a, b) in (0u8..4, 0usize..9)) {
            prop_assert!(x < 50);
            prop_assert_eq!(a as usize * b / b.max(1), a as usize * b / b.max(1));
        }
    }
}
