//! Offline stand-in for the `rand` crate.
//!
//! The build environment has no crates.io access, so the workspace patches
//! `rand` to this in-tree implementation (see `[patch.crates-io]` in the
//! root `Cargo.toml`). It provides exactly the API surface the workspace
//! uses — `StdRng`, `SeedableRng::seed_from_u64`, `Rng::gen_range` and
//! `Rng::gen_bool` — backed by the public-domain xoshiro256** generator,
//! so workload generation stays deterministic per seed.
//!
//! It is **not** a cryptographic or statistically rigorous replacement for
//! the real crate; it exists only to keep the repository self-contained.

#![forbid(unsafe_code)]

use std::ops::{Range, RangeInclusive};

/// Seeding interface (the subset of `rand::SeedableRng` used here).
pub trait SeedableRng: Sized {
    /// Creates a generator from a 64-bit seed.
    fn seed_from_u64(seed: u64) -> Self;
}

/// A half-open or inclusive range that can be sampled uniformly.
pub trait SampleRange<T> {
    /// Draws one value from the range using `rng`.
    fn sample_one(self, rng: &mut dyn RngCore) -> T;
}

/// The minimal core-RNG object-safe interface.
pub trait RngCore {
    /// The next 64 uniformly distributed bits.
    fn next_u64(&mut self) -> u64;
}

/// Types samplable from uniform bits (the `Standard` distribution).
pub trait Standard: Sized {
    /// Draws one value.
    fn draw(rng: &mut dyn RngCore) -> Self;
}

impl Standard for f64 {
    fn draw(rng: &mut dyn RngCore) -> f64 {
        (rng.next_u64() >> 11) as f64 / (1u64 << 53) as f64
    }
}

impl Standard for u32 {
    fn draw(rng: &mut dyn RngCore) -> u32 {
        rng.next_u64() as u32
    }
}

impl Standard for u64 {
    fn draw(rng: &mut dyn RngCore) -> u64 {
        rng.next_u64()
    }
}

impl Standard for bool {
    fn draw(rng: &mut dyn RngCore) -> bool {
        rng.next_u64() & 1 == 1
    }
}

/// User-facing sampling methods (the subset of `rand::Rng` used here).
pub trait Rng: RngCore + Sized {
    /// Uniform sample from `range`. Panics when the range is empty.
    fn gen_range<T, R: SampleRange<T>>(&mut self, range: R) -> T {
        range.sample_one(self)
    }

    /// A uniform sample of `T` (`f64` in `[0, 1)`, integers over the full
    /// width).
    fn gen<T: Standard>(&mut self) -> T {
        T::draw(self)
    }

    /// Returns `true` with probability `p`.
    fn gen_bool(&mut self, p: f64) -> bool {
        assert!(
            (0.0..=1.0).contains(&p),
            "gen_bool probability {p} not in [0, 1]"
        );
        // 53 uniform mantissa bits, as the real crate does.
        let v = (self.next_u64() >> 11) as f64 / (1u64 << 53) as f64;
        v < p
    }
}

impl<R: RngCore + Sized> Rng for R {}

/// Integer primitives uniform sampling is defined for. Implemented via a
/// widening round-trip through `u64` so one generic `SampleRange` impl per
/// range shape exists — that uniqueness is what lets inference pick `T`
/// from the range argument alone.
pub trait UniformInt: Copy + PartialOrd {
    /// Widens to `u64` (values are non-negative in all supported uses).
    fn to_u64(self) -> u64;
    /// Narrows back from `u64`.
    fn from_u64(v: u64) -> Self;
}

macro_rules! impl_uniform_int {
    ($($t:ty),*) => {$(
        impl UniformInt for $t {
            fn to_u64(self) -> u64 {
                self as u64
            }
            fn from_u64(v: u64) -> Self {
                v as $t
            }
        }
    )*};
}

impl_uniform_int!(u8, u16, u32, u64, usize, i32, i64);

impl<T: UniformInt> SampleRange<T> for Range<T> {
    fn sample_one(self, rng: &mut dyn RngCore) -> T {
        assert!(self.start < self.end, "cannot sample empty range");
        let (lo, hi) = (self.start.to_u64(), self.end.to_u64());
        T::from_u64(lo + rng.next_u64() % (hi - lo))
    }
}

impl<T: UniformInt> SampleRange<T> for RangeInclusive<T> {
    fn sample_one(self, rng: &mut dyn RngCore) -> T {
        let (start, end) = (*self.start(), *self.end());
        assert!(start <= end, "cannot sample empty range");
        let (lo, hi) = (start.to_u64(), end.to_u64());
        let span = hi - lo + 1;
        if span == 0 {
            // Full-width inclusive range of u64 itself.
            return T::from_u64(rng.next_u64());
        }
        T::from_u64(lo + rng.next_u64() % span)
    }
}

/// Deterministic generators.
pub mod rngs {
    use super::{RngCore, SeedableRng};

    /// xoshiro256** — the stand-in for `rand::rngs::StdRng`.
    #[derive(Clone, Debug)]
    pub struct StdRng {
        s: [u64; 4],
    }

    impl SeedableRng for StdRng {
        fn seed_from_u64(seed: u64) -> Self {
            // SplitMix64 expansion, the canonical way to seed xoshiro.
            let mut x = seed;
            let mut next = || {
                x = x.wrapping_add(0x9E37_79B9_7F4A_7C15);
                let mut z = x;
                z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
                z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
                z ^ (z >> 31)
            };
            StdRng {
                s: [next(), next(), next(), next()],
            }
        }
    }

    impl RngCore for StdRng {
        fn next_u64(&mut self) -> u64 {
            let s = &mut self.s;
            let result = s[1].wrapping_mul(5).rotate_left(7).wrapping_mul(9);
            let t = s[1] << 17;
            s[2] ^= s[0];
            s[3] ^= s[1];
            s[1] ^= s[2];
            s[0] ^= s[3];
            s[2] ^= t;
            s[3] = s[3].rotate_left(45);
            result
        }
    }
}

#[cfg(test)]
mod tests {
    use super::rngs::StdRng;
    use super::{Rng, SeedableRng};

    #[test]
    fn deterministic_per_seed() {
        let mut a = StdRng::seed_from_u64(42);
        let mut b = StdRng::seed_from_u64(42);
        for _ in 0..100 {
            assert_eq!(a.gen_range(0..1000u32), b.gen_range(0..1000u32));
        }
        let mut c = StdRng::seed_from_u64(43);
        let same: Vec<u32> = (0..32).map(|_| c.gen_range(0..1000)).collect();
        let mut a2 = StdRng::seed_from_u64(42);
        let reference: Vec<u32> = (0..32).map(|_| a2.gen_range(0..1000)).collect();
        assert_ne!(same, reference);
    }

    #[test]
    fn ranges_stay_in_bounds() {
        let mut r = StdRng::seed_from_u64(7);
        for _ in 0..1000 {
            let v = r.gen_range(3..17usize);
            assert!((3..17).contains(&v));
            let w = r.gen_range(4..=16u64);
            assert!((4..=16).contains(&w));
        }
    }

    #[test]
    fn gen_bool_rough_frequency() {
        let mut r = StdRng::seed_from_u64(1);
        let hits = (0..10_000).filter(|_| r.gen_bool(0.3)).count();
        assert!((2500..3500).contains(&hits), "got {hits}");
        assert!((0..100).all(|_| !r.gen_bool(0.0)));
        assert!((0..100).all(|_| r.gen_bool(1.0)));
    }
}
