//! Offline stand-in for the `criterion` crate.
//!
//! The build environment has no crates.io access, so the workspace patches
//! `criterion` to this in-tree harness (see `[patch.crates-io]` in the root
//! `Cargo.toml`). It runs each benchmark a small number of times and
//! reports best/median wall time — no statistics, plots, or comparison
//! machinery. The API subset matches what `crates/bench/benches/*` uses:
//! [`Criterion::bench_function`], [`Criterion::benchmark_group`],
//! [`BenchmarkGroup::bench_with_input`], [`BenchmarkId`], [`Bencher::iter`],
//! [`black_box`] and the [`criterion_group!`]/[`criterion_main!`] macros.

#![forbid(unsafe_code)]

use std::fmt;
use std::hint;
use std::time::{Duration, Instant};

/// Opaque-to-the-optimizer value sink.
pub fn black_box<T>(x: T) -> T {
    hint::black_box(x)
}

/// Identifies one benchmark within a group.
#[derive(Clone, Debug)]
pub struct BenchmarkId {
    text: String,
}

impl BenchmarkId {
    /// `function_name/parameter` id.
    pub fn new(function_name: impl fmt::Display, parameter: impl fmt::Display) -> Self {
        BenchmarkId {
            text: format!("{function_name}/{parameter}"),
        }
    }

    /// Id that is just the parameter.
    pub fn from_parameter(parameter: impl fmt::Display) -> Self {
        BenchmarkId {
            text: parameter.to_string(),
        }
    }
}

impl fmt::Display for BenchmarkId {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(&self.text)
    }
}

/// Runs the routine under test and records its timing.
pub struct Bencher {
    samples: Vec<Duration>,
    sample_size: usize,
}

impl Bencher {
    /// Times `routine`, running `sample_size` samples.
    pub fn iter<O, R: FnMut() -> O>(&mut self, mut routine: R) {
        // One warm-up, then the measured samples.
        black_box(routine());
        for _ in 0..self.sample_size {
            let start = Instant::now();
            black_box(routine());
            self.samples.push(start.elapsed());
        }
    }
}

/// The top-level harness handle.
pub struct Criterion {
    sample_size: usize,
}

impl Default for Criterion {
    fn default() -> Self {
        let sample_size = std::env::var("CRITERION_SAMPLE_SIZE")
            .ok()
            .and_then(|s| s.parse().ok())
            .unwrap_or(10);
        Criterion { sample_size }
    }
}

impl Criterion {
    /// Runs one stand-alone benchmark.
    pub fn bench_function<F: FnMut(&mut Bencher)>(&mut self, id: &str, f: F) -> &mut Self {
        run_one(id, self.sample_size, f);
        self
    }

    /// Opens a named group of related benchmarks.
    pub fn benchmark_group(&mut self, name: impl Into<String>) -> BenchmarkGroup<'_> {
        BenchmarkGroup {
            name: name.into(),
            sample_size: self.sample_size,
            _parent: self,
        }
    }
}

/// A group of related benchmarks sharing a sample size.
pub struct BenchmarkGroup<'a> {
    name: String,
    sample_size: usize,
    _parent: &'a mut Criterion,
}

impl BenchmarkGroup<'_> {
    /// Overrides the number of samples for this group.
    pub fn sample_size(&mut self, n: usize) -> &mut Self {
        self.sample_size = n.max(1);
        self
    }

    /// Runs one parameterized benchmark.
    pub fn bench_with_input<I, F>(&mut self, id: BenchmarkId, input: &I, mut f: F) -> &mut Self
    where
        F: FnMut(&mut Bencher, &I),
    {
        let full = format!("{}/{}", self.name, id);
        run_one(&full, self.sample_size, |b| f(b, input));
        self
    }

    /// Runs one benchmark without an input parameter.
    pub fn bench_function<F: FnMut(&mut Bencher)>(&mut self, id: &str, f: F) -> &mut Self {
        let full = format!("{}/{}", self.name, id);
        run_one(&full, self.sample_size, f);
        self
    }

    /// Finishes the group (reporting is per-benchmark, so this is a no-op).
    pub fn finish(self) {}
}

fn run_one<F: FnMut(&mut Bencher)>(id: &str, sample_size: usize, mut f: F) {
    let mut b = Bencher {
        samples: Vec::new(),
        sample_size,
    };
    f(&mut b);
    if b.samples.is_empty() {
        println!("{id:<48} (no samples)");
        return;
    }
    b.samples.sort_unstable();
    let best = b.samples[0];
    let median = b.samples[b.samples.len() / 2];
    println!(
        "{id:<48} best {:>12} | median {:>12} | n={}",
        fmt_duration(best),
        fmt_duration(median),
        b.samples.len()
    );
}

fn fmt_duration(d: Duration) -> String {
    let ns = d.as_nanos();
    if ns < 10_000 {
        format!("{ns} ns")
    } else if ns < 10_000_000 {
        format!("{:.2} µs", ns as f64 / 1e3)
    } else if ns < 10_000_000_000 {
        format!("{:.2} ms", ns as f64 / 1e6)
    } else {
        format!("{:.2} s", ns as f64 / 1e9)
    }
}

/// Declares a group of benchmark functions.
#[macro_export]
macro_rules! criterion_group {
    ($name:ident, $($target:path),+ $(,)?) => {
        fn $name() {
            let mut c = $crate::Criterion::default();
            $($target(&mut c);)+
        }
    };
}

/// Declares the benchmark entry point.
#[macro_export]
macro_rules! criterion_main {
    ($($group:path),+ $(,)?) => {
        fn main() {
            $($group();)+
        }
    };
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn bench_function_runs_routine() {
        let mut c = Criterion::default();
        let mut runs = 0u32;
        c.bench_function("smoke", |b| b.iter(|| runs += 1));
        assert!(runs > 0);
    }

    #[test]
    fn group_and_ids() {
        let mut c = Criterion::default();
        let mut g = c.benchmark_group("g");
        g.sample_size(3);
        let mut total = 0u64;
        g.bench_with_input(BenchmarkId::new("f", 7), &7u64, |b, &x| {
            b.iter(|| total += x)
        });
        g.finish();
        assert!(total >= 7);
        assert_eq!(BenchmarkId::from_parameter("LCD").to_string(), "LCD");
        assert_eq!(BenchmarkId::new("ovs", "emacs").to_string(), "ovs/emacs");
    }
}
